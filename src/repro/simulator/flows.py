"""Flow and CoFlow data model (the CoFlow abstraction, §2.1).

A :class:`Flow` is a point-to-point transfer between one sender port and one
receiver port with a known byte volume (volumes are used by the *simulator*
to know when a flow completes; online schedulers such as Saath and Aalo never
read them — they only see bytes sent so far).

A :class:`CoFlow` is a set of semantically-related flows; its completion time
(CCT) is the time from its arrival until its **last** flow finishes.

**Flow-table views.** During a simulation the mutable hot state of every
active flow (``bytes_sent``, ``rate``, ``finish_time``, ``start_time``,
``dst``) lives in the struct-of-arrays
:class:`~repro.simulator.state.FlowTable`, and the :class:`Flow` object is a
thin *view*: the fields above are properties that read/write the table row
the flow was adopted into. Detached flows (before activation, after their
coflow completes, or in hand-built tests) carry the same state in shadow
slots, so the object behaves identically either way. Attachment is an
engine-internal lifecycle (see ``FlowTable.adopt`` / ``evict``); policy and
analysis code never needs to know which mode a flow is in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import ConfigError


class Flow:
    """One flow of a coflow.

    Mutable simulation state (``bytes_sent``, ``rate``, timestamps) lives on
    the object while detached and in the owning
    :class:`~repro.simulator.state.FlowTable` row while attached; static
    description (ports, volume) is set at construction.
    """

    __slots__ = (
        "flow_id", "coflow_id", "src", "volume", "available_time",
        "_dst", "_bytes_sent", "_rate", "_start_time", "_finish_time",
        "_tbl", "_row",
    )

    def __init__(
        self,
        flow_id: int,
        coflow_id: int,
        src: int,
        dst: int,
        volume: float,
        bytes_sent: float = 0.0,
        rate: float = 0.0,
        start_time: float | None = None,
        finish_time: float | None = None,
        available_time: float = 0.0,
    ):
        if volume < 0:
            raise ConfigError(f"flow volume must be >= 0, got {volume}")
        if src == dst:
            raise ConfigError(
                f"flow {flow_id}: src and dst ports must differ "
                f"(got port {src} for both)"
            )
        self.flow_id = flow_id
        self.coflow_id = coflow_id
        self.src = src
        self.volume = volume
        #: Time at which the flow's data becomes available to send (§4.3,
        #: pipelined frameworks). 0 = available from coflow arrival.
        self.available_time = available_time
        self._dst = dst
        self._bytes_sent = bytes_sent
        self._rate = rate
        self._start_time = start_time
        self._finish_time = finish_time
        #: Owning flow table and row index while attached (engine lifetime).
        self._tbl = None
        self._row = -1

    # ---- table-backed fields ----------------------------------------------

    @property
    def dst(self) -> int:
        t = self._tbl
        return self._dst if t is None else t.dst[self._row]

    @dst.setter
    def dst(self, value: int) -> None:
        t = self._tbl
        if t is None:
            self._dst = value
        else:
            t.dst[self._row] = value

    @property
    def bytes_sent(self) -> float:
        t = self._tbl
        return self._bytes_sent if t is None else t.bytes_sent[self._row]

    @bytes_sent.setter
    def bytes_sent(self, value: float) -> None:
        t = self._tbl
        if t is None:
            self._bytes_sent = value
        else:
            t.bytes_sent[self._row] = value

    @property
    def rate(self) -> float:
        """Current allocated rate, bytes/second."""
        t = self._tbl
        return self._rate if t is None else t.rate[self._row]

    @rate.setter
    def rate(self, value: float) -> None:
        t = self._tbl
        if t is None:
            self._rate = value
        else:
            t.rate[self._row] = value

    @property
    def start_time(self) -> float | None:
        """First instant with rate > 0 (None until scheduled)."""
        t = self._tbl
        return self._start_time if t is None else t.start_time[self._row]

    @start_time.setter
    def start_time(self, value: float | None) -> None:
        t = self._tbl
        if t is None:
            self._start_time = value
        else:
            t.start_time[self._row] = value

    @property
    def finish_time(self) -> float | None:
        t = self._tbl
        return self._finish_time if t is None else t.finish_time[self._row]

    @finish_time.setter
    def finish_time(self, value: float | None) -> None:
        t = self._tbl
        if t is None:
            self._finish_time = value
        else:
            t.finish_time[self._row] = value

    # ---- derived state -----------------------------------------------------

    @property
    def remaining(self) -> float:
        """Bytes still to send."""
        return max(self.volume - self.bytes_sent, 0.0)

    @property
    def finished(self) -> bool:
        return self.finish_time is not None

    def advance(self, duration: float) -> None:
        """Progress the flow at its current rate for ``duration`` seconds."""
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        if self.rate > 0 and not self.finished:
            self.bytes_sent = min(self.volume, self.bytes_sent + self.rate * duration)

    def time_to_completion(self) -> float:
        """Seconds until this flow finishes at the current rate (inf if idle)."""
        if self.finished:
            return math.inf
        if self.rate <= 0:
            return math.inf
        return self.remaining / self.rate

    def fct(self, coflow_arrival: float) -> float:
        """Flow completion time measured from the coflow arrival instant."""
        if self.finish_time is None:
            raise ValueError(f"flow {self.flow_id} has not finished")
        return self.finish_time - coflow_arrival

    # ---- value semantics (mirrors the former dataclass) --------------------

    def _astuple(self) -> tuple:
        return (
            self.flow_id, self.coflow_id, self.src, self.dst, self.volume,
            self.bytes_sent, self.rate, self.start_time, self.finish_time,
            self.available_time,
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Flow:
            return self._astuple() == other._astuple()  # type: ignore[union-attr]
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]  # mutable value type

    def __repr__(self) -> str:
        return (
            f"Flow(flow_id={self.flow_id!r}, coflow_id={self.coflow_id!r}, "
            f"src={self.src!r}, dst={self.dst!r}, volume={self.volume!r}, "
            f"bytes_sent={self.bytes_sent!r}, rate={self.rate!r}, "
            f"start_time={self.start_time!r}, "
            f"finish_time={self.finish_time!r}, "
            f"available_time={self.available_time!r})"
        )


@dataclass(slots=True)
class CoFlow:
    """A coflow: a set of flows plus online bookkeeping.

    Scheduler-owned fields (``queue``, ``deadline``, ``queue_entry_time``)
    are kept here for convenience; they carry no meaning until a scheduler
    sets them.
    """

    coflow_id: int
    arrival_time: float
    flows: list[Flow] = field(default_factory=list)

    #: Current priority-queue index (0 = highest priority).
    queue: int = 0
    #: Absolute starvation deadline (§4.2 D5); +inf until assigned.
    deadline: float = math.inf
    #: Instant the coflow last changed queue (deadline bookkeeping).
    queue_entry_time: float = 0.0
    finish_time: float | None = None
    #: Optional DAG metadata: ids of coflows (stages) this one depends on.
    depends_on: tuple[int, ...] = ()
    #: Optional job association (for JCT accounting, §7.2).
    job_id: int | None = None
    #: Flow-table attachment (engine lifetime): the owning table and this
    #: coflow's row indices, aligned with ``flows`` order.
    _table: "object | None" = field(
        default=None, init=False, repr=False, compare=False
    )
    _rows: "list[int] | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for f in self.flows:
            if f.coflow_id != self.coflow_id:
                raise ConfigError(
                    f"flow {f.flow_id} has coflow_id {f.coflow_id}, "
                    f"expected {self.coflow_id}"
                )

    # ---- static structure -------------------------------------------------

    @property
    def width(self) -> int:
        """Number of flows (the paper's *width*)."""
        return len(self.flows)

    @property
    def total_volume(self) -> float:
        """Sum of flow volumes in bytes (the paper's *size*)."""
        return sum(f.volume for f in self.flows)

    @property
    def max_flow_volume(self) -> float:
        return max((f.volume for f in self.flows), default=0.0)

    def sender_ports(self) -> set[int]:
        return {f.src for f in self.flows}

    def receiver_ports(self) -> set[int]:
        return {f.dst for f in self.flows}

    def ports(self) -> set[int]:
        """All sender and receiver ports this coflow touches.

        Sender and receiver port id spaces are disjoint (see
        :mod:`repro.simulator.fabric`), so a plain union is correct.
        """
        return self.sender_ports() | self.receiver_ports()

    def flows_at_sender(self, port: int) -> list[Flow]:
        return [f for f in self.flows if f.src == port]

    def flows_at_receiver(self, port: int) -> list[Flow]:
        return [f for f in self.flows if f.dst == port]

    # ---- dynamic state ----------------------------------------------------

    @property
    def bytes_sent(self) -> float:
        """Total bytes sent across all flows (Aalo's queue metric)."""
        # List comprehension + C-level sum: same accumulation order and
        # floats as the generator form, without the frame switching. The
        # attached path reads the flow-table column directly (rows are in
        # ``flows`` order, so the accumulation order is unchanged).
        rows = self._rows
        if rows is not None:
            bs = self._table.bytes_sent
            return sum([bs[i] for i in rows])
        return sum([f.bytes_sent for f in self.flows])

    @property
    def max_flow_bytes_sent(self) -> float:
        """Bytes sent by the longest-progress flow (Saath's ``m_c``, D3)."""
        rows = self._rows
        if rows is not None:
            if not rows:
                return 0.0
            bs = self._table.bytes_sent
            return max([bs[i] for i in rows])
        if not self.flows:
            return 0.0
        return max([f.bytes_sent for f in self.flows])

    @property
    def remaining(self) -> float:
        return sum(f.remaining for f in self.flows)

    @property
    def finished(self) -> bool:
        return self.finish_time is not None

    def unfinished_flows(self) -> list[Flow]:
        return [f for f in self.flows if not f.finished]

    def finished_flows(self) -> list[Flow]:
        return [f for f in self.flows if f.finished]

    def all_flows_finished(self) -> bool:
        return all(f.finished for f in self.flows)

    def cct(self) -> float:
        """CoFlow completion time: last flow finish minus arrival."""
        if self.finish_time is None:
            raise ValueError(f"coflow {self.coflow_id} has not finished")
        return self.finish_time - self.arrival_time

    # ---- clairvoyant metrics (offline schedulers only) ---------------------

    def bottleneck_remaining_bytes(self) -> float:
        """Largest per-port remaining byte load (SEBF's Γ numerator).

        Considers both sender-side and receiver-side aggregation, as Varys's
        effective-bottleneck computation does.
        """
        load: dict[int, float] = {}
        for f in self.flows:
            if f.finished:
                continue
            load[f.src] = load.get(f.src, 0.0) + f.remaining
            load[f.dst] = load.get(f.dst, 0.0) + f.remaining
        return max(load.values(), default=0.0)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self.flows)

    def __len__(self) -> int:
        return len(self.flows)


def make_coflow(
    coflow_id: int,
    arrival_time: float,
    transfers: Iterable[tuple[int, int, float]],
    *,
    flow_id_start: int = 0,
    depends_on: tuple[int, ...] = (),
    job_id: int | None = None,
) -> CoFlow:
    """Convenience constructor from ``(src, dst, volume_bytes)`` triples.

    Flow ids are assigned sequentially from ``flow_id_start``; they only
    need to be unique within one simulation, and trace loaders guarantee it
    by spacing the start values.
    """
    flows = [
        Flow(flow_id=flow_id_start + i, coflow_id=coflow_id,
             src=src, dst=dst, volume=vol)
        for i, (src, dst, vol) in enumerate(transfers)
    ]
    if not flows:
        raise ConfigError(f"coflow {coflow_id} must have at least one flow")
    return CoFlow(
        coflow_id=coflow_id,
        arrival_time=arrival_time,
        flows=flows,
        depends_on=depends_on,
        job_id=job_id,
    )


def clone_coflows(coflows: Iterable[CoFlow]) -> list[CoFlow]:
    """Deep-copy a workload so it can be replayed under another scheduler.

    Simulation runs mutate flow state (bytes sent, finish times); comparing
    policies on the same workload therefore requires fresh copies. Only the
    static description is carried over — all dynamic state resets.
    """
    fresh: list[CoFlow] = []
    new = Flow.__new__
    for c in coflows:
        flows = []
        for f in c.flows:
            # Direct slot initialisation: the source flow already passed
            # construction validation, and experiment sweeps clone whole
            # workloads once per (policy, trace) run.
            g = new(Flow)
            g.flow_id = f.flow_id
            g.coflow_id = f.coflow_id
            g.src = f.src
            g.volume = f.volume
            g.available_time = f.available_time
            g._dst = f.dst
            g._bytes_sent = 0.0
            g._rate = 0.0
            g._start_time = None
            g._finish_time = None
            g._tbl = None
            g._row = -1
            flows.append(g)
        fresh.append(
            CoFlow(
                coflow_id=c.coflow_id,
                arrival_time=c.arrival_time,
                flows=flows,
                depends_on=c.depends_on,
                job_id=c.job_id,
            )
        )
    return fresh
