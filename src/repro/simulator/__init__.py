"""Fluid-flow discrete-event fabric simulator (the evaluation substrate)."""

from .engine import SimulationResult, Simulator, run_policy
from .events import Event, EventKind, EventQueue
from .fabric import Fabric, PortLedger
from .flows import CoFlow, Flow, clone_coflows, make_coflow
from .state import ClusterState

__all__ = [
    "ClusterState",
    "CoFlow",
    "Event",
    "EventKind",
    "EventQueue",
    "Fabric",
    "Flow",
    "PortLedger",
    "SimulationResult",
    "Simulator",
    "clone_coflows",
    "make_coflow",
    "run_policy",
]
