"""Fluid-flow discrete-event fabric simulator (the evaluation substrate)."""

from .engine import (
    SimulationResult,
    Simulator,
    run_policy,
    run_scenario,
)
from .events import Event, EventKind, EventQueue
from .fabric import Fabric, PortLedger
from .flows import CoFlow, Flow, clone_coflows, make_coflow
from .scenario import ListScenario, Scenario, StreamScenario, validate_workload
from .session import SessionSnapshot, SimulationSession
from .state import ClusterState

__all__ = [
    "ClusterState",
    "CoFlow",
    "Event",
    "EventKind",
    "EventQueue",
    "Fabric",
    "Flow",
    "ListScenario",
    "PortLedger",
    "Scenario",
    "SessionSnapshot",
    "SimulationResult",
    "SimulationSession",
    "Simulator",
    "StreamScenario",
    "clone_coflows",
    "make_coflow",
    "run_policy",
    "run_scenario",
    "validate_workload",
]
