"""The simulation session: a resumable fluid-flow discrete-event kernel.

:class:`SimulationSession` advances a cluster of coflows through a
big-switch fabric under the control of a
:class:`~repro.schedulers.base.Scheduler`. Between events every flow moves
at a constant allocated rate, so the session only needs to visit:

* external events — coflow arrivals and dynamics actions, pulled lazily
  from the attached :class:`~repro.simulator.scenario.Scenario`,
* flow completions under the current allocation,
* scheduler wakeups — queue-threshold crossings and starvation deadlines,
* (sync mode) δ-grid boundaries at which new schedules take effect.

**The external-event spine.** All outside input arrives through one
time-ordered stream: the scenario is pulled one event ahead of simulated
time, and due events are fed through the session's stable event queue
together with the *derived* external events the session generates itself
(data-availability wakeups; DAG releases fire inline at the completion that
unblocks them). Because the spine is pulled lazily, a generator-backed
scenario never materialises its future: an open-loop workload of a million
coflows holds only the active flows (plus O(1) lookahead) in memory — pair
with ``sink=`` to stop the result from retaining finished coflows. The one
deliberately O(total) structure is the finished-coflow *id set* (plain
ints, ~60 bytes each), kept for DAG-dependency release and duplicate-id
detection; it is orders of magnitude smaller than the flow objects the
streaming path avoids.

**Lifecycle.** A session is explicitly steppable: :meth:`step` processes
the next instant, :meth:`run_until` pauses the session at a simulated time
bound, :meth:`run` drives it to completion, and :meth:`snapshot` /
:meth:`restore` checkpoint and revive the *entire* kernel state — flow
table, ledgers, scheduler bookkeeping, event queue, epoch machinery — for
mid-run forking and warm-started what-if comparisons. A paused session sits
*between instants*: it never advances the fluid state to a non-event time,
so resumed runs replay the exact float arithmetic of an uninterrupted run
(the equivalence suite asserts byte-identical results).

**Coordinator timing model (§5).** With ``sync_interval == 0`` the
scheduler reacts instantly to every event (the idealised coordinator used
for the main simulation results). With ``δ = sync_interval > 0``, state
changes are only *acted on* at the next multiple of δ: a coflow arriving at
``t`` is first scheduled at ``ceil(t/δ)·δ``, and bandwidth freed by a
completion stays idle until that boundary — exactly the staleness that
Fig. 14(c) measures. Because rates are constant between state changes,
recomputing at every grid point would yield identical schedules, so the
session only recomputes at grid points *following* a state change; this is
an exact optimisation, not an approximation.

**Flat flow table.** All hot per-flow state lives in the cluster state's
:class:`~repro.simulator.state.FlowTable` — parallel lists indexed by a
dense integer *row* assigned at activation. Every loop below (byte
accounting, completion lookout, allocation application) walks plain lists
with integer indices; ``Flow`` objects are views used only at the
object-facing edges (scheduler callbacks, results, dynamics). The running
set is a row-keyed insertion-ordered dict, the completion heap carries rows,
and the per-flow allocation epoch is a table column.

**Allocation epochs (``config.epochs``).** Each applied allocation opens an
*epoch*: the session keeps the previous round's raw ``flow_id → rate`` map
and applies the next allocation as a diff, touching only flows whose rate
changed (C-level dict-view set operations find the changed entries), while
the running set and its per-coflow counts are maintained in place instead of
being rebuilt from every pending flow. Completion lookout uses a lazy
min-heap keyed by ``(predicted finish lower bound, epoch, row)``: entries
from superseded epochs are popped and discarded lazily, and each event pops
only the entries whose lower bound could beat the provisional minimum — for
those few flows the exact per-event arithmetic of the full scan is
replayed, so the chosen instant is bit-identical to the scan's (see
:meth:`SimulationSession._heap_completion` for the monotonicity argument).
When a round churns most rates (UC-TCP recomputes global fair shares every
event), the heap would cost more than it saves, so the session falls back
to the plain scan until churn subsides. ``epochs=False`` restores the
pre-epoch engine; both paths produce byte-identical
:class:`SimulationResult`\\ s (asserted by the equivalence suite).
"""

from __future__ import annotations

import hashlib
import json
import math
import pickle
from copy import deepcopy
from dataclasses import dataclass, field
from heapq import heappop, heappush
from itertools import chain
from pathlib import Path
from time import perf_counter_ns
from typing import Callable, Protocol

from .. import _fastcore as _fc
from ..config import SimulationConfig
from ..errors import CheckpointError, ConfigError, SimulationError
from ..observability import MetricsRegistry, PhaseTimers, Tracer
from ..schedulers.base import Allocation, Scheduler
from .events import Event, EventKind, EventQueue
from .fabric import Fabric
from .flows import CoFlow, Flow
from .scenario import Scenario, validate_workload
from .state import ClusterState
from .topology import Topology


class DynamicsAction(Protocol):
    """Dynamics events (failures, stragglers, …) applied at their instant."""

    time: float

    def apply(self, sim: "SimulationSession", now: float) -> None:
        """Mutate session state; the kernel reschedules afterwards."""
        ...  # pragma: no cover - protocol


class ScheduleObserver(Protocol):
    """Telemetry hook notified after every schedule application."""

    def on_schedule(self, state: ClusterState, allocation: Allocation,
                    now: float) -> None:
        ...  # pragma: no cover - protocol


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    #: Every coflow that finished, in completion order (empty when the
    #: session streams finished coflows to a ``sink`` instead).
    coflows: list[CoFlow] = field(default_factory=list)
    #: Number of schedule computations performed.
    reschedules: int = 0
    #: Simulated time at which the last coflow finished.
    makespan: float = 0.0
    #: Observability registry of the run (``None`` unless ``metrics=`` was
    #: passed to the session). Excluded from equality so instrumented and
    #: uninstrumented results compare equal on simulation content.
    metrics: "MetricsRegistry | None" = field(
        default=None, repr=False, compare=False
    )
    #: Lazily-built ``coflow_id → CoFlow`` index backing :meth:`cct` and
    #: :meth:`coflow`, which analysis code calls in per-coflow loops.
    _by_id: dict[int, CoFlow] = field(
        default_factory=dict, repr=False, compare=False
    )

    def _index(self) -> dict[int, CoFlow]:
        by_id = self._by_id
        if len(by_id) != len(self.coflows):
            by_id.clear()
            for c in self.coflows:
                by_id[c.coflow_id] = c
        return by_id

    def cct(self, coflow_id: int) -> float:
        try:
            return self._index()[coflow_id].cct()
        except KeyError:
            raise KeyError(f"coflow {coflow_id} not in result") from None

    def ccts(self) -> dict[int, float]:
        """coflow_id → CCT for every finished coflow."""
        return {c.coflow_id: c.cct() for c in self.coflows}

    def average_cct(self) -> float:
        if not self.coflows:
            return 0.0
        return sum(c.cct() for c in self.coflows) / len(self.coflows)

    def coflow(self, coflow_id: int) -> CoFlow:
        try:
            return self._index()[coflow_id]
        except KeyError:
            raise KeyError(f"coflow {coflow_id} not in result") from None


#: Relative + absolute safety margin applied to heap lower bounds so that
#: stepwise float drift in ``bytes_sent`` between the anchor event and the
#: instant a completion actually fires can only cause an extra (exact)
#: recomputation, never a missed completion. Deliberately much wider than
#: the drift of any realistic event chain.
_HEAP_MARGIN_REL = 1e-9
_HEAP_MARGIN_ABS = 1e-12

#: Session attributes that hold the live scenario stream. They are the one
#: part of a session that cannot be deep-copied (a generator has no value
#: semantics), so snapshots exclude them and store the scenario's
#: not-yet-consumed remainder instead (:meth:`Scenario.tail`); restore
#: re-creates the stream by iterating that tail.
_STREAM_ATTRS = frozenset({"_source", "_source_iter", "_lookahead"})

#: Sentinel for :meth:`SimulationSession.restore`'s ``sink`` parameter:
#: "keep the donor's sink" (``None`` means "clear it — retain coflows").
_KEEP_SINK = object()


#: On-disk checkpoint format version. Bump on any change to the snapshot
#: payload layout that old readers cannot interpret; :meth:`load` refuses
#: mismatched versions with a clear error instead of unpickling garbage.
CHECKPOINT_FORMAT = 1

_CHECKPOINT_MAGIC = "repro-checkpoint"


@dataclass
class SessionSnapshot:
    """Opaque checkpoint of a paused :class:`SimulationSession`.

    Holds a deep copy of the full kernel state (flow table, ledgers,
    scheduler bookkeeping, event queue, RNG-free epoch machinery) plus the
    scenario cursor. One snapshot can be restored any number of times —
    every :meth:`SimulationSession.restore` call deep-copies the payload
    again, so restored sessions never share mutable state with each other
    or with the snapshot.

    Snapshots are also *durable*: :meth:`save` writes a self-describing
    checkpoint file (JSON header with a format version and a content
    checksum, then the pickled snapshot) and :meth:`load` revives it,
    refusing truncated, corrupted or version-incompatible files with a
    :class:`~repro.errors.CheckpointError`. Because a restored session
    replays the exact float arithmetic of an uninterrupted run, a
    save → load → run round-trip is byte-identical to never stopping.
    """

    #: Simulated time at which the snapshot was taken.
    time: float
    #: Registry name of the donor session's scheduler (for what-if sweeps
    #: that want to know which branch continues the donor's policy).
    policy: str
    cls: type = field(repr=False)
    payload: dict = field(repr=False)
    #: The not-yet-consumed remainder of the scenario, insulated from the
    #: donor session's future mutations (see :meth:`Scenario.tail`).
    scenario: Scenario = field(repr=False)

    def save(self, path: str | Path) -> Path:
        """Write this snapshot as a durable checkpoint file.

        Layout: one JSON header line (magic, format version, policy,
        simulated time, SHA-256 and byte length of the body) followed by
        the pickled snapshot. The write is atomic (temp file + rename), so
        a crash mid-save leaves any previous checkpoint intact.
        """
        path = Path(path)
        try:
            body = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(
                f"snapshot cannot be pickled for a durable checkpoint: "
                f"{exc}; sessions carrying closures (sink=, observer=, "
                f"rate_perturbation= lambdas) can be snapshotted in memory "
                f"but not saved to disk"
            ) from exc
        header = json.dumps({
            "magic": _CHECKPOINT_MAGIC,
            "format": CHECKPOINT_FORMAT,
            "policy": self.policy,
            "time": self.time,
            "sha256": hashlib.sha256(body).hexdigest(),
            "length": len(body),
        }, sort_keys=True).encode("ascii")
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_bytes(header + b"\n" + body)
        tmp.replace(path)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "SessionSnapshot":
        """Read a checkpoint written by :meth:`save`, verifying integrity.

        Every failure mode gets its own :class:`CheckpointError` message:
        unreadable file, foreign/garbled header, format-version mismatch,
        truncation (length short of the header's promise) and checksum
        mismatch are all detected *before* the body is unpickled.
        """
        path = Path(path)
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint {path}: {exc}"
            ) from exc
        head, sep, body = blob.partition(b"\n")
        if not sep:
            raise CheckpointError(
                f"checkpoint {path} is truncated: missing header/body "
                f"separator"
            )
        try:
            header = json.loads(head.decode("ascii"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint {path} has an unreadable header: {exc}"
            ) from exc
        if (not isinstance(header, dict)
                or header.get("magic") != _CHECKPOINT_MAGIC):
            raise CheckpointError(
                f"{path} is not a session checkpoint (bad magic)"
            )
        fmt = header.get("format")
        if fmt != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"checkpoint {path} uses format version {fmt!r}; this "
                f"build reads version {CHECKPOINT_FORMAT}"
            )
        if header.get("length") != len(body):
            raise CheckpointError(
                f"checkpoint {path} is truncated: header promises "
                f"{header.get('length')} body bytes, found {len(body)}"
            )
        digest = hashlib.sha256(body).hexdigest()
        if header.get("sha256") != digest:
            raise CheckpointError(
                f"checkpoint {path} failed its content checksum "
                f"(expected {header.get('sha256')}, got {digest}); the "
                f"file was corrupted after it was written"
            )
        try:
            snap = pickle.loads(body)
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint {path} passed its checksum but its body "
                f"does not unpickle: {exc}"
            ) from exc
        if not isinstance(snap, cls):
            raise CheckpointError(
                f"checkpoint {path} does not contain a {cls.__name__}"
            )
        return snap


class SimulationSession:
    """Drives one scheduler over one scenario on one fabric.

    Parameters
    ----------
    scenario:
        The external-event spine to drive (see
        :mod:`repro.simulator.scenario`). May be omitted at construction
        and supplied later via :meth:`attach` — the legacy
        :class:`~repro.simulator.engine.Simulator` façade does exactly
        that from its ``run(coflows)`` adapter.
    sink:
        Optional callable receiving each finished coflow *instead of*
        retaining it in ``result.coflows`` — the O(active-flows) memory
        mode for open-loop scenarios. ``result.makespan`` and
        ``result.reschedules`` are still maintained.
    """

    def __init__(
        self,
        fabric: Fabric,
        scheduler: Scheduler,
        config: SimulationConfig,
        *,
        scenario: Scenario | None = None,
        topology: "Topology | None" = None,
        rate_perturbation: Callable[[Flow, float], float] | None = None,
        observer: "ScheduleObserver | None" = None,
        sink: Callable[[CoFlow], None] | None = None,
        tracer: "Tracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
        timers: "PhaseTimers | None" = None,
    ):
        self.fabric = fabric
        self.scheduler = scheduler
        self.config = config
        #: Fabric topology (None = the classic big switch). Must be built
        #: over a fabric with the same geometry as ``fabric``.
        if topology is not None and (
                topology.fabric.num_machines != fabric.num_machines
                or topology.fabric.port_rate != fabric.port_rate):
            raise ConfigError(
                f"topology fabric {topology.fabric} does not match the "
                f"session fabric {fabric}"
            )
        self.topology = topology
        #: Optional testbed-mode hook mapping (flow, allocated rate) to the
        #: *achieved* rate — models imperfect rate enforcement (§7 setup).
        self._rate_perturbation = rate_perturbation
        #: Optional telemetry observer notified after every schedule
        #: application (see repro.analysis.telemetry.TelemetryRecorder).
        self._observer = observer
        if observer is not None and hasattr(observer, "bind_scheduler"):
            observer.bind_scheduler(scheduler)
        #: Finished-coflow consumer for O(active) streaming runs.
        self._sink = sink

        self.state = ClusterState(fabric=fabric, topology=topology)
        #: The cluster state's struct-of-arrays flow registry; every hot
        #: loop below indexes its columns by row.
        self._table = self.state.table
        #: Observability hooks — all default None, each hot-path use is a
        #: single ``is not None`` attribute check (the zero-overhead
        #: contract; see docs/ARCHITECTURE.md "Observability layer").
        self._tracer: "Tracer | None" = None
        self._metrics: "MetricsRegistry | None" = None
        self._timers: "PhaseTimers | None" = None
        self.attach_instrumentation(
            tracer=tracer, metrics=metrics, timers=timers
        )
        #: Compiled hot-loop kernels (repro._fastcore): on when the config
        #: requests them *and* the extension is built. Results are
        #: bit-identical either way (fuzz firewall), so a missing build
        #: only costs speed — loudly, via a one-time RuntimeWarning.
        want_fastcore = bool(getattr(config, "fastcore", True))
        self._fastcore = want_fastcore and _fc.AVAILABLE
        if want_fastcore and not _fc.AVAILABLE:
            _fc.warn_fallback_once()
        self._table.fastcore = self._fastcore
        #: Per-flow efficiency factors (< 1 for straggling flows, §4.3).
        self.flow_efficiency: dict[int, float] = {}
        #: Per-machine efficiency factors (sender-port keyed) set by
        #: :class:`~repro.simulator.dynamics.StragglerEvent`: a straggling
        #: *worker machine* slows every flow it sends, including flows that
        #: arrive while the episode lasts (see :meth:`_activate`). Empty in
        #: the default path, so untouched runs stay byte-identical.
        self.machine_efficiency: dict[int, float] = {}

        self._events = EventQueue()
        self._now = 0.0
        self._next_sync: float | None = None
        self._waiting_dag: dict[int, CoFlow] = {}
        #: Dependency index (coflow_id → still-unmet dependency ids) and its
        #: inverse (dependency id → waiting coflows, arrival order), so a
        #: coflow completion releases dependents in O(dependents) instead of
        #: rescanning every DAG-blocked coflow.
        self._unmet_deps: dict[int, set[int]] = {}
        self._dep_waiters: dict[int, list[CoFlow]] = {}
        self._finished_ids: set[int] = set()
        self._result = SimulationResult()
        #: Last coflow finish instant (completion times are monotone, so
        #: this equals the makespan without retaining the coflows).
        self._max_finish = 0.0
        #: Rows with a positive rate under the current allocation, plus
        #: rows that may already be complete (zero-volume on arrival).
        #: Only these can change state between events — keeping the hot
        #: loops off the full active set is the kernel's main optimisation.
        #: Under ``epochs`` this is a row-keyed insertion-ordered dict
        #: maintained in place; the legacy path rebuilds a row list per
        #: application. Both iterate as rows.
        self._running: "dict[int, None] | list[int]" = (
            {} if (config.epochs and rate_perturbation is None) else []
        )
        #: Coflow ids with at least one running flow, precomputed at
        #: allocation time so time advancement can mark "progressed"
        #: coflows in the scheduling delta with one set union.
        self._running_cids: frozenset[int] = frozenset()
        self._maybe_done: list[tuple[int, CoFlow]] = []
        self._coflow_of: dict[int, CoFlow] = {}
        #: Lower bound (absolute time) before which no running flow can
        #: satisfy the completion predicate; lets _process_completions skip
        #: its scan on pure arrival / sync steps. Maintained by
        #: _earliest_completion; -inf means "unknown, always scan".
        self._no_completion_before: float = -math.inf
        #: Rows whose completion predicate fired during the last time
        #: advance (collected while moving bytes, so the completion pass
        #: walks only these instead of rescanning every running flow).
        self._completion_candidates: list[int] = []
        #: True when the current step advanced time, i.e. the candidate
        #: list above is authoritative. Zero-width steps (several events at
        #: one instant) and dynamics fall back to the full scan.
        self._advanced_this_step = False
        #: True once ``delta.progressed`` already contains the current
        #: ``_running_cids`` — the per-advance union is a no-op until the
        #: delta is cleared, the running set changes, or a completion
        #: removes ids from the progressed set.
        self._progressed_synced = False

        # ---- allocation-epoch state (config.epochs) ----------------------
        #: Rate perturbation rewrites every rate on every application, so
        #: nothing can be diffed; the epoch machinery disables itself.
        self._epochs_engine = config.epochs and rate_perturbation is None
        #: Raw flow_id → rate map of the previously applied allocation.
        self._prev_rates: dict[int, float] = {}
        #: row → running-flow count per coflow backing ``_running_cids``.
        self._running_count: dict[int, int] = {}
        #: Rows whose raw rate is positive but whose data is not yet
        #: available (§4.3): re-evaluated on every diffed application.
        self._gated: dict[int, None] = {}
        #: coflow_id → index in ``state.active_coflows`` (candidate order).
        self._active_pos: dict[int, int] = {}
        #: Lazy completion min-heap of (finish lower bound, epoch, row).
        self._heap: list[tuple[float, int, int]] = []
        #: Running rows whose rate changed since their last heap entry.
        self._unheaped: dict[int, None] = {}
        #: True once the heap covers every running flow (warm).
        self._heap_live = False
        #: Next _earliest_completion should seed the heap during its scan.
        self._seed_pending = False
        #: Next application must be a full rebuild (first round; dynamics).
        self._full_apply_pending = True
        #: Events seen since the last allocation application — the reseed
        #: heuristic's estimate of how many events share one δ window.
        self._events_since_apply = 0

        # ---- scenario stream (the external-event spine) ------------------
        #: Attached scenario, its live iterator, and the one pulled-but-not-
        #: yet-due event (the spine's lookahead).
        self._source: Scenario | None = None
        self._source_iter = None
        self._lookahead: Event | None = None
        #: Events already pushed from the stream into the queue (the
        #: snapshot cursor).
        self._consumed = 0
        #: Largest event time pulled so far (ordering guard for scenarios
        #: that bypass StreamScenario's own check).
        self._last_pulled = 0.0
        #: Memoised next-instant from a boundary probe (run_until) that the
        #: following step() must consume instead of recomputing — keeps the
        #: paused-and-resumed event sequence identical to a straight run.
        self._pending_instant: float | None = None

        if scenario is not None:
            self.attach(scenario)

    # ---- public API -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (the last processed instant)."""
        return self._now

    @property
    def done(self) -> bool:
        """True when nothing can ever happen again: the scenario stream is
        exhausted, no external events are queued, and no coflow is active
        or DAG-blocked."""
        return self._exhausted()

    @property
    def result(self) -> SimulationResult:
        """The (possibly still accumulating) simulation result."""
        return self._result

    @property
    def scenario(self) -> Scenario | None:
        return self._source

    def attach(self, scenario: Scenario) -> "SimulationSession":
        """Bind the external-event spine; a session drives one scenario."""
        if self._source is not None:
            raise SimulationError(
                "a scenario is already attached to this session"
            )
        self._source = scenario
        self._source_iter = scenario.events()
        self._pull_lookahead()
        return self

    def attach_instrumentation(
        self,
        *,
        tracer: "Tracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
        timers: "PhaseTimers | None" = None,
    ) -> "SimulationSession":
        """(Re)attach observability hooks to this live session.

        Wires the tracer/registry/timers into the session, the scheduler
        (and its queue tracker), the cluster state's ledgers and the path
        map. Passing ``None`` for a hook detaches it. Hooks are
        attachments of the *live* session: :meth:`snapshot` payloads drop
        tracers and timers (deep copies of both are ``None``) while the
        metrics registry — plain data — is deep-copied along, so a
        restored branch keeps counting into its own copy.
        """
        self._tracer = tracer
        self._metrics = metrics
        self._timers = timers
        self.state.set_metrics(metrics)
        self.scheduler.bind_instrumentation(tracer, metrics)
        if self.state.paths is not None:
            self.state.paths.tracer = tracer
        return self

    @property
    def tracer(self) -> "Tracer | None":
        return self._tracer

    @property
    def metrics(self) -> "MetricsRegistry | None":
        return self._metrics

    @property
    def timers(self) -> "PhaseTimers | None":
        return self._timers

    def run(
        self,
        *,
        checkpoint_every: float | None = None,
        checkpoint_path: "str | Path | None" = None,
        on_checkpoint: "Callable[[SessionSnapshot], None] | None" = None,
    ) -> SimulationResult:
        """Drive the attached scenario to completion.

        Scenarios that know their coflow count stop the instant the last
        coflow completes (exactly like the classic batch ``run(coflows)``,
        which never drained events scheduled after the final completion);
        unbounded streams run until the spine and the cluster are empty.

        ``checkpoint_every`` (simulated seconds) snapshots the session each
        time the clock crosses a cadence boundary, writing to
        ``checkpoint_path`` (each save atomically replaces the previous —
        the file always holds the latest durable checkpoint) and/or handing
        the snapshot to ``on_checkpoint``. Snapshots are taken between
        instants, so checkpointing never perturbs the event sequence: the
        run's result is byte-identical with checkpointing on or off, and a
        run resumed from any checkpoint finishes byte-identical too.
        Requires a replayable scenario (see :meth:`snapshot`).
        """
        if self._source is None:
            raise SimulationError(
                "no scenario attached; pass scenario= at construction, "
                "call attach(), or use the Simulator.run(coflows) façade"
            )
        if checkpoint_every is not None:
            if checkpoint_every <= 0:
                raise ConfigError(
                    f"checkpoint_every must be positive (simulated "
                    f"seconds), got {checkpoint_every}"
                )
            if checkpoint_path is None and on_checkpoint is None:
                raise ConfigError(
                    "checkpoint_every needs a destination: pass "
                    "checkpoint_path= and/or on_checkpoint="
                )
        next_ckpt = checkpoint_every
        if self._timers is not None:
            self._timers.start()

        def maybe_checkpoint() -> None:
            nonlocal next_ckpt
            if next_ckpt is None or self._now < next_ckpt:
                return
            while next_ckpt <= self._now:
                next_ckpt += checkpoint_every
            snap = self.snapshot()
            if self._metrics is not None:
                self._metrics.inc("session.checkpoints")
            if self._tracer is not None:
                self._tracer.instant(
                    "checkpoint", self._now, "session",
                    {"time": self._now},
                )
            if checkpoint_path is not None:
                snap.save(checkpoint_path)
            if on_checkpoint is not None:
                on_checkpoint(snap)

        expected = self._source.total_coflows
        if expected is None:
            while self.step():
                maybe_checkpoint()
        else:
            while len(self._finished_ids) < expected:
                if not self.step():
                    raise SimulationError(
                        f"scenario promised {expected} coflows but the "
                        f"stream ended after "
                        f"{len(self._finished_ids)} completed; nothing "
                        f"left to simulate"
                    )
                maybe_checkpoint()
        return self._finalize()

    def step(self) -> bool:
        """Process the next instant (events, completions, rescheduling).

        Returns ``False`` — without side effects — once the simulation is
        finished (see :attr:`done`); raises
        :class:`~repro.errors.SimulationError` when no future instant
        exists but unfinished coflows remain (a stalled simulation).
        """
        if self._exhausted():
            return False
        timers = self._timers
        t_next = self._pending_instant
        if t_next is None:
            if timers is None:
                t_next = self._next_instant()
            else:
                _t0 = perf_counter_ns()
                t_next = self._next_instant()
                timers.add("lookout", perf_counter_ns() - _t0)
        else:
            self._pending_instant = None
        if math.isinf(t_next):
            self._raise_stuck()
        if t_next > self.config.max_sim_time:
            raise SimulationError(
                f"simulation exceeded max_sim_time="
                f"{self.config.max_sim_time}; likely a livelock"
            )
        if timers is None:
            self._advance_to(t_next)
            changed = self._process_completions()
            changed |= self._process_external_events()
        else:
            _t0 = perf_counter_ns()
            self._advance_to(t_next)
            _t1 = perf_counter_ns()
            timers.add("advance", _t1 - _t0)
            changed = self._process_completions()
            _t2 = perf_counter_ns()
            timers.add("completions", _t2 - _t1)
            changed |= self._process_external_events()
            timers.add("events", perf_counter_ns() - _t2)
        if changed:
            self._request_resync(self._now)

        if self._next_sync is not None and self._next_sync <= self._now:
            self._recompute_schedule()
        return True

    def run_until(self, t: float) -> "SimulationSession":
        """Process every instant up to and including simulated time ``t``.

        The session pauses *between instants*: ``now`` is left at the last
        processed instant ≤ ``t`` (never advanced to ``t`` itself), so the
        fluid state's float arithmetic is untouched by the pause and a
        subsequent :meth:`run` replays an uninterrupted run byte for byte.
        Returns ``self`` for chaining (``session.run_until(5.0).snapshot()``).
        """
        if self._source is None:
            raise SimulationError("no scenario attached")
        while not self._exhausted():
            nxt = self._peek_instant()
            if math.isinf(nxt):
                # Nothing can ever happen again, yet work remains: raise
                # the stall diagnostic here rather than letting a
                # `while not session.done: run_until(...)` driver spin.
                self._raise_stuck()
            if nxt > t:
                break
            self.step()
        return self

    def _peek_instant(self) -> float:
        """Next instant without stepping; memoised so the step() that
        follows consumes the identical value (``_next_instant`` feeds the
        heap-reseed heuristic, which must tick once per processed step)."""
        if self._pending_instant is None:
            self._pending_instant = self._next_instant()
        return self._pending_instant

    def _exhausted(self) -> bool:
        return (
            self._lookahead is None
            and not self._events
            and not self.state.active_coflows
            and not self._waiting_dag
        )

    def _finalize(self) -> SimulationResult:
        result = self._result
        if self._timers is not None:
            self._timers.stop()
        result.metrics = self._metrics
        if self._sink is None:
            result.makespan = max(
                (c.finish_time or 0.0 for c in result.coflows), default=0.0
            )
        else:
            result.makespan = self._max_finish
        return result

    # ---- snapshot / restore ----------------------------------------------------

    def snapshot(self) -> SessionSnapshot:
        """Checkpoint the paused session.

        Requires a replayable scenario (list-backed, or a factory-backed
        stream): the snapshot stores the scenario's not-yet-consumed tail
        (:meth:`Scenario.tail` — pristine clones for materialised
        scenarios, a skip cursor for deterministic generators). Everything
        else (flow table, ledgers, scheduler state, event queue, epoch
        machinery) is deep-copied, so the live session can keep running
        unaffected.
        """
        source = self._source
        if source is None:
            raise SimulationError("no scenario attached; nothing to snapshot")
        if not source.replayable:
            raise SimulationError(
                "scenario is not replayable: snapshot() needs a list-backed "
                "scenario or a factory-backed stream "
                "(Scenario.from_stream(lambda: ...))"
            )
        if self._metrics is not None:
            self._metrics.inc("session.snapshots")
        if self._tracer is not None:
            self._tracer.instant(
                "snapshot", self._now, "session",
                {"consumed": self._consumed},
            )
        memo: dict[int, object] = {}
        payload = {
            k: deepcopy(v, memo)
            for k, v in self.__dict__.items()
            if k not in _STREAM_ATTRS
        }
        return SessionSnapshot(
            time=self._now,
            policy=self.scheduler.name,
            cls=type(self),
            payload=payload,
            scenario=source.tail(self._consumed),
        )

    @staticmethod
    def restore(
        snap: SessionSnapshot,
        *,
        scheduler: Scheduler | None = None,
        sink: "Callable[[CoFlow], None] | None | object" = _KEEP_SINK,
    ) -> "SimulationSession":
        """Revive a session from a snapshot.

        The payload is deep-copied again, so one snapshot supports any
        number of independent restores (mid-run forking). Passing
        ``scheduler`` swaps the policy for a what-if branch: the new
        scheduler's arrival hooks are replayed for every live coflow and
        the next round is forced to a full rebuild — results then follow
        the *new* policy and are naturally not byte-identical to the
        donor's. Passing ``sink`` rebinds the finished-coflow consumer
        (forks usually want their own aggregator — note that functions are
        copied by reference, so inheriting a donor's sink means feeding
        the donor's aggregator); ``sink=None`` clears it, so the branch
        retains finished coflows in its result.
        """
        session: SimulationSession = object.__new__(snap.cls)
        memo: dict[int, object] = {}
        for k, v in snap.payload.items():
            setattr(session, k, deepcopy(v, memo))
        # Instrumentation attachments: tracers and phase timers deep-copy
        # to None (live handles), the metrics registry — plain data — is
        # revived from the payload; pre-observability checkpoints carry
        # none of the three and restore with instrumentation off.
        for attr in ("_tracer", "_metrics", "_timers"):
            if not hasattr(session, attr):
                setattr(session, attr, None)
        if session._metrics is not None:
            session._metrics.inc("session.restores")
        # Re-gate the compiled kernels on *this* environment: a snapshot
        # from a fastcore build restores cleanly where the extension is
        # absent (and vice versa) — results are bit-identical either way.
        session._fastcore = (
            bool(getattr(session.config, "fastcore", True)) and _fc.AVAILABLE
        )
        session._table.fastcore = session._fastcore
        session._source = snap.scenario
        session._source_iter = snap.scenario.events()
        session._consumed = 0
        session._lookahead = None
        session._pull_lookahead()
        if sink is not _KEEP_SINK:
            session._sink = sink
        if scheduler is not None:
            session.scheduler = scheduler
            observer = session._observer
            if observer is not None and hasattr(observer, "bind_scheduler"):
                observer.bind_scheduler(scheduler)
            scheduler.bind_instrumentation(
                session._tracer, session._metrics
            )
            # Warm the new policy exactly as if it had witnessed the live
            # coflows arrive, then rebuild all incremental bookkeeping.
            for c in session.state.active_coflows:
                scheduler.on_coflow_arrival(c, c.arrival_time)
            session.state.delta.mark_full()
            session._full_apply_pending = True
            session._go_cold()
            session._request_resync(session._now)
            # Any memoised next-instant predates the forced resync.
            session._pending_instant = None
        return session

    def fork(self) -> "SimulationSession":
        """Snapshot + restore in one call: an independent what-if branch."""
        return self.restore(self.snapshot())

    # ---- the spine --------------------------------------------------------------

    def _pull_lookahead(self) -> None:
        """Advance the scenario stream by one event."""
        try:
            event = next(self._source_iter)
        except StopIteration:
            self._lookahead = None
            return
        if event.time < self._last_pulled:
            raise SimulationError(
                f"scenario events out of order: t={event.time} after "
                f"t={self._last_pulled}"
            )
        self._last_pulled = event.time
        self._lookahead = event

    # ---- main loop -------------------------------------------------------------

    def _next_instant(self) -> float:
        """Earliest of: external event, flow completion, pending sync."""
        self._events_since_apply += 1
        candidates: list[float] = []
        head = self._events.peek_time()
        lookahead = self._lookahead
        if lookahead is not None and (head is None or lookahead.time < head):
            head = lookahead.time
        if head is not None:
            candidates.append(head)
        if self._next_sync is not None:
            candidates.append(self._next_sync)
        completion = self._earliest_completion()
        if completion is not None:
            candidates.append(completion)
        if not candidates:
            return math.inf
        return max(min(candidates), self._now)

    def _flow_complete(self, f: Flow) -> bool:
        """Completion predicate with a rate-relative guard.

        Absolute byte tolerance alone is not enough: a fast flow can be
        left with ``remaining`` just above ``epsilon_bytes`` whose transfer
        time (< 1e-12 s) underflows float64 time addition, freezing the
        clock. Anything needing less than ~10 ns at its current rate is
        complete.
        """
        remaining = f.volume - f.bytes_sent
        if remaining <= self.config.epsilon_bytes:
            return True
        return f.rate > 0 and remaining <= f.rate * 1e-8

    def _earliest_completion(self) -> float | None:
        if self._maybe_done:
            self._no_completion_before = self._now
            return self._now
        if self._heap_live:
            return self._heap_completion()
        # Inlined _flow_complete over the table columns: this scan runs for
        # every running flow at every event, so per-flow dispatch overhead
        # is material — integer list indexing replaces every attribute
        # read. When a seed was requested the same pass pushes a margined
        # lower bound per row, warming the heap for subsequent events.
        if self._fastcore:
            if self._metrics is not None:
                self._metrics.inc("kernel.scan_completions.fastcore")
            t = self._table
            ret, ncb, seeded = _fc.core.scan_completions(
                self._running, t.volume, t.bytes_sent, t.rate,
                t.finish_time, t.epoch, self.config.epsilon_bytes,
                self._now, self._seed_pending, self._heap,
            )
            if seeded:
                self._seed_pending = False
                self._heap_live = True
                self._unheaped.clear()
                if self._metrics is not None:
                    self._metrics.inc("heap.seeds")
            self._no_completion_before = ncb
            return ret
        if self._metrics is not None:
            self._metrics.inc("kernel.scan_completions.python")
        t = self._table
        vol = t.volume
        bs = t.bytes_sent
        rt = t.rate
        ft = t.finish_time
        ep = t.epoch
        seed = self._seed_pending
        heap = self._heap
        push = heappush
        eps = self.config.epsilon_bytes
        best = math.inf
        pred_min = math.inf
        now = self._now
        for i in self._running:
            if ft[i] is not None:
                continue
            remaining = vol[i] - bs[i]
            rate = rt[i]
            if remaining <= eps or (rate > 0 and remaining <= rate * 1e-8):
                self._no_completion_before = now
                if seed:
                    heap.clear()  # partial seed; retry next event
                return now
            if rate > 0:
                ttc = remaining / rate
                if ttc < best:
                    best = ttc
                # Earliest instant the completion predicate can start
                # firing for this flow: its tolerance window opens
                # max(eps, rate*1e-8) bytes before the exact finish.
                slack = eps if eps > rate * 1e-8 else rate * 1e-8
                pred = (remaining - slack) / rate
                if pred < pred_min:
                    pred_min = pred
                if seed:
                    push(heap, (
                        now + pred - abs(pred) * _HEAP_MARGIN_REL
                        - _HEAP_MARGIN_ABS,
                        ep[i], i,
                    ))
        if seed:
            self._seed_pending = False
            self._heap_live = True
            self._unheaped.clear()
            if self._metrics is not None:
                self._metrics.inc("heap.seeds")
        # Conservative margin (a few ulps) so float noise can only make us
        # scan unnecessarily, never miss a completion.
        self._no_completion_before = (
            now + pred_min - abs(pred_min) * 1e-12 - 1e-15
            if math.isfinite(pred_min) else math.inf
        )
        return now + best if math.isfinite(best) else None

    def _heap_completion(self) -> float | None:
        """Next completion instant via the lazy heap (epochs engine, warm).

        Exactness: the full scan returns ``now + min_f(remaining_f/rate_f)``
        and float addition is monotone, so that equals
        ``min_f(now + remaining_f/rate_f)``. Every running flow holds a heap
        entry whose key lower-bounds its ``now + remaining/rate`` at any
        later event of its epoch (margin covers stepwise float drift), so
        popping entries while the top key beats the provisional best — and
        recomputing those few flows with the scan's exact per-event
        arithmetic — yields the same minimum as scanning everything. Rows
        rescheduled since the last event sit in ``_unheaped`` and are
        scanned exactly (and re-heaped) first; stale epochs are discarded
        (eviction bumps a row's epoch, so a recycled row can never be
        mistaken for its previous occupant).
        """
        if self._fastcore:
            if self._metrics is not None:
                self._metrics.inc("kernel.heap_completion.fastcore")
            t = self._table
            ret, ncb = _fc.core.heap_completion(
                self._running, t.volume, t.bytes_sent, t.rate,
                t.finish_time, t.epoch, self.config.epsilon_bytes,
                self._now, self._heap, self._unheaped,
            )
            self._no_completion_before = ncb
            return ret
        if self._metrics is not None:
            self._metrics.inc("kernel.heap_completion.python")
        now = self._now
        eps = self.config.epsilon_bytes
        heap = self._heap
        t = self._table
        vol = t.volume
        bs = t.bytes_sent
        rt = t.rate
        ft = t.finish_time
        ep = t.epoch
        push = heappush
        running = self._running
        best = math.inf  # absolute instant
        if self._unheaped:
            for i in self._unheaped:
                if ft[i] is not None:
                    continue
                remaining = vol[i] - bs[i]
                rate = rt[i]
                if remaining <= eps or (
                        rate > 0 and remaining <= rate * 1e-8):
                    # Unheaped rows are re-examined next event, so bailing
                    # out without clearing the set is safe.
                    self._no_completion_before = now
                    return now
                if rate > 0:
                    tt = now + remaining / rate
                    if tt < best:
                        best = tt
                    slack = eps if eps > rate * 1e-8 else rate * 1e-8
                    pred = (remaining - slack) / rate
                    push(heap, (
                        now + pred - abs(pred) * _HEAP_MARGIN_REL
                        - _HEAP_MARGIN_ABS,
                        ep[i], i,
                    ))
            self._unheaped.clear()
        seen: set[int] = set()
        repush: list[tuple[float, int, int]] = []
        while heap and heap[0][0] < best:
            entry = heappop(heap)
            i = entry[2]
            if (i not in running or ep[i] != entry[1]
                    or ft[i] is not None or i in seen):
                continue  # stale epoch / finished / already refreshed
            rate = rt[i]
            if rate <= 0:
                continue  # silenced mid-window; reallocation re-heaps it
            remaining = vol[i] - bs[i]
            if remaining <= eps or remaining <= rate * 1e-8:
                push(heap, entry)
                for e in repush:
                    push(heap, e)
                self._no_completion_before = now
                return now
            tt = now + remaining / rate
            if tt < best:
                best = tt
            slack = eps if eps > rate * 1e-8 else rate * 1e-8
            pred = (remaining - slack) / rate
            seen.add(i)
            repush.append((
                now + pred - abs(pred) * _HEAP_MARGIN_REL - _HEAP_MARGIN_ABS,
                entry[1], i,
            ))
        for e in repush:
            push(heap, e)
        # Every running flow still has an entry, so the heap top bounds all
        # completion windows from below (stale entries only push it lower,
        # which is conservative: the completion pass may scan needlessly
        # but can never be skipped wrongly).
        self._no_completion_before = heap[0][0] if heap else math.inf
        return best if math.isfinite(best) else None

    def _go_cold(self) -> None:
        """Drop the completion heap; fall back to full scans until reseeded."""
        if self._metrics is not None and self._heap_live:
            self._metrics.inc("heap.go_cold")
        self._heap_live = False
        self._seed_pending = False
        self._heap.clear()
        self._unheaped.clear()

    def _advance_to(self, t: float) -> None:
        dt = t - self._now
        if dt < 0:
            raise SimulationError(f"time went backwards: {self._now} -> {t}")
        if dt > 0:
            # Byte accounting over the table columns (same semantics as the
            # old inlined Flow.advance), collecting rows whose completion
            # predicate fires so the completion pass needn't rescan the
            # whole running set.
            tbl = self._table
            vol = tbl.volume
            bs = tbl.bytes_sent
            rt = tbl.rate
            candidates = self._completion_candidates
            candidates.clear()
            if self._metrics is not None:
                self._metrics.inc(
                    "kernel.advance.fastcore" if self._fastcore
                    else "kernel.advance.python"
                )
            if t < self._no_completion_before:
                # The pre-advance lookout proved no completion window opens
                # by ``t``: the predicate below is false for every row, so
                # this step only moves bytes — branchlessly. Zero-rate rows
                # (completed mid-window, or silenced) write back their own
                # bytes (``x + 0.0·dt == x`` for the non-negative bytes
                # column), and finished rows sit clamped at volume, so the
                # unconditional write is exact for every row.
                if self._fastcore:
                    _fc.core.advance_running(self._running, vol, bs, rt, dt)
                else:
                    for i in self._running:
                        sent = bs[i] + rt[i] * dt
                        volume = vol[i]
                        bs[i] = sent if sent < volume else volume
            elif self._fastcore:
                _fc.core.advance_collect(
                    self._running, vol, bs, rt, tbl.finish_time, dt,
                    self.config.epsilon_bytes, candidates,
                )
            else:
                ft = tbl.finish_time
                eps = self.config.epsilon_bytes
                for i in self._running:
                    rate = rt[i]
                    if rate > 0 and ft[i] is None:
                        volume = vol[i]
                        sent = bs[i] + rate * dt
                        if sent > volume:
                            sent = volume
                        bs[i] = sent
                        remaining = volume - sent
                        if remaining <= eps or remaining <= rate * 1e-8:
                            candidates.append(i)
            if not self._progressed_synced:
                self.state.delta.progressed |= self._running_cids
                self._progressed_synced = True
            self._advanced_this_step = True
        else:
            self._advanced_this_step = False
        self._now = t
        if self._tracer is not None:
            self._tracer.now = t

    # ---- event processing ---------------------------------------------------------

    def _process_completions(self) -> bool:
        if not self._maybe_done and self._now < self._no_completion_before:
            # The pre-advance scan proved no flow can have completed yet
            # (this step stops strictly before any completion window).
            return False
        tbl = self._table
        vol = tbl.volume
        bs = tbl.bytes_sent
        rt = tbl.rate
        ft = tbl.finish_time
        eps = self.config.epsilon_bytes
        raw: list[int]
        if self._advanced_this_step:
            # The advance loop already found every row whose completion
            # predicate fired; no second scan over the running set needed.
            raw = self._completion_candidates
            self._completion_candidates = []
        else:
            # Zero-width step (events piling up at one instant): rates may
            # have changed since the last advance, so scan everything —
            # exactly what the original per-event pass did.
            if self._fastcore:
                if self._metrics is not None:
                    self._metrics.inc("kernel.scan_candidates.fastcore")
                raw = _fc.core.scan_candidates(
                    self._running, vol, bs, rt, ft, eps
                )
            else:
                if self._metrics is not None:
                    self._metrics.inc("kernel.scan_candidates.python")
                raw = []
                for i in self._running:
                    if ft[i] is not None:
                        continue
                    remaining = vol[i] - bs[i]
                    if remaining <= eps or (
                            rt[i] > 0 and remaining <= rt[i] * 1e-8):
                        raw.append(i)
        if len(raw) > 1:
            # The running set is maintained incrementally under epochs, so
            # its iteration order drifts from the legacy rebuild order;
            # restore it (active-coflow position, then flow position) so
            # same-instant completions are recorded identically. On the
            # legacy path the list is already in this order (stable no-op).
            active_pos = self._active_pos
            cid = tbl.coflow_id
            pos = tbl.pos
            raw.sort(key=lambda i: (active_pos[cid[i]], pos[i]))
        coflow_of = self._coflow_of
        cid = tbl.coflow_id
        candidates = [(i, coflow_of[cid[i]]) for i in raw]
        if self._maybe_done:
            candidates.extend(self._maybe_done)
            self._maybe_done = []

        view = tbl.view
        touched: dict[int, CoFlow] = {}
        metrics = self._metrics
        for i, coflow in candidates:
            if ft[i] is not None:
                continue
            remaining = vol[i] - bs[i]
            if remaining > eps and not (
                    rt[i] > 0 and remaining <= rt[i] * 1e-8):
                continue  # predicate no longer holds (rates changed)
            bs[i] = vol[i]
            rt[i] = 0.0
            ft[i] = self._now
            f = view[i]
            self.state.note_flow_finished(f)
            self.scheduler.on_flow_completion(f, coflow, self._now)
            touched[coflow.coflow_id] = coflow
            if metrics is not None:
                metrics.inc("flows.completed")
        if not touched:
            return False

        done: set[int] = set()
        tracer = self._tracer
        for coflow in touched.values():
            if coflow.all_flows_finished():
                coflow.finish_time = self._now
                self._finished_ids.add(coflow.coflow_id)
                self._max_finish = self._now
                if metrics is not None:
                    metrics.inc("coflows.completed")
                    metrics.observe("coflow.cct", coflow.cct())
                if tracer is not None:
                    tracer.instant(
                        "coflow_complete", self._now, "session",
                        {"coflow": coflow.coflow_id,
                         "cct": coflow.cct()},
                    )
                if self._sink is None:
                    self._result.coflows.append(coflow)
                else:
                    self._sink(coflow)
                self.scheduler.on_coflow_completion(coflow, self._now)
                done.add(coflow.coflow_id)
                del self._coflow_of[coflow.coflow_id]
                self._evict_coflow(coflow)
        if done:
            # note_coflow_finished discards finished ids from the
            # progressed set below; the next advance must re-union so the
            # delta matches the legacy every-advance behaviour exactly
            # (finished ids reappear while they remain in _running_cids).
            self._progressed_synced = False
            self.state.active_coflows = [
                c for c in self.state.active_coflows
                if c.coflow_id not in done
            ]
            self._active_pos = {
                c.coflow_id: i
                for i, c in enumerate(self.state.active_coflows)
            }
            for coflow_id in done:
                self.state.note_coflow_finished(coflow_id)
                self._release_dependents_of(coflow_id)
        return True

    def _evict_coflow(self, coflow: CoFlow) -> None:
        """Drop a finished coflow's rows from the epoch-engine bookkeeping.

        The table rows themselves are evicted (values copied back into the
        view objects, row recycled, epoch bumped) by
        :meth:`ClusterState.note_coflow_finished`, which runs right after
        this cleanup. ``_running_count`` is updated so future
        ``_running_cids`` rebuilds are correct, but the current frozenset is
        left untouched: the legacy engine also keeps a finished coflow's id
        in the progressed mark-set until the next allocation is applied.
        """
        if not self._epochs_engine:
            # Legacy path rebuilds the running list on every application;
            # stale rows in it are harmless (finished rows are skipped by
            # finish_time, recycled rows carry zero rate until applied).
            return
        rows = coflow._rows
        if rows is None:
            return
        running = self._running
        counts = self._running_count
        gated = self._gated
        unheaped = self._unheaped
        cid = coflow.coflow_id
        for i in rows:
            gated.pop(i, None)
            unheaped.pop(i, None)
            if i in running:
                del running[i]  # type: ignore[union-attr]
                left = counts.get(cid, 0) - 1
                if left > 0:
                    counts[cid] = left
                else:
                    counts.pop(cid, None)

    def _process_external_events(self) -> bool:
        # Feed the spine: push every stream event due at this instant into
        # the queue (the queue's (time, kind, insertion) order then merges
        # them with derived events exactly as the batch path always did).
        lookahead = self._lookahead
        if lookahead is not None:
            bound = self._now + 1e-15
            while lookahead is not None and lookahead.time <= bound:
                self._events.push(lookahead)
                self._consumed += 1
                self._pull_lookahead()
                lookahead = self._lookahead
        changed = False
        while True:
            head = self._events.peek_time()
            if head is None or head > self._now + 1e-15:
                break
            event = self._events.pop()
            if event.kind is EventKind.COFLOW_ARRIVAL:
                self._handle_arrival(event.payload)
                changed = True
            elif event.kind is EventKind.DYNAMICS:
                event.payload.apply(self, self._now)
                if not isinstance(event.payload, _DataAvailable):
                    if self._metrics is not None:
                        self._metrics.inc("dynamics.actions")
                    if self._tracer is not None:
                        self._tracer.instant(
                            "dynamics", self._now, "dynamics",
                            {"action": type(event.payload).__name__},
                        )
                    # Arbitrary mutation (restarts, capacity changes, …):
                    # incremental bookkeeping must rebuild from scratch.
                    # Data-availability wakeups change nothing the delta
                    # vocabulary tracks, so they stay incremental.
                    self.state.note_dynamics()
                    # Rates/ports may have been rewritten under the epoch
                    # engine's feet (dynamics write through the views into
                    # the table): drop the heap (scans are always exact)
                    # and rebuild the diff baseline at the next round.
                    self._full_apply_pending = True
                    self._go_cold()
                changed = True
            else:  # SYNC markers never enter the external queue
                raise SimulationError(f"unexpected event kind {event.kind}")
        return changed

    def _handle_arrival(self, coflow: CoFlow) -> None:
        cid = coflow.coflow_id
        if (cid in self._coflow_of or cid in self._waiting_dag
                or cid in self._finished_ids):
            # Batch scenarios catch this up front (validate_workload);
            # streaming scenarios cannot enumerate the future, so the id
            # check happens lazily at arrival.
            raise SimulationError(f"duplicate coflow id {cid}")
        unmet = {d for d in coflow.depends_on if d not in self._finished_ids}
        if unmet:
            self._waiting_dag[cid] = coflow
            self._unmet_deps[cid] = unmet
            for dep in unmet:
                self._dep_waiters.setdefault(dep, []).append(coflow)
            return
        self._activate(coflow)

    def _activate(self, coflow: CoFlow) -> None:
        # Batch scenarios validate flow-id uniqueness up front; streams
        # cannot, and a duplicate *live* flow id would silently corrupt
        # the flow table (adoption overwrites ``row_of``, so allocations
        # keyed by flow id land on the wrong row). Catch it here, with the
        # batch validator's error text. Reusing a *finished* flow's id is
        # allowed for streams (an unbounded generator cannot keep every id
        # unique forever without O(total) memory) — but the epoch diff's
        # previous-rate map is keyed by flow id and outlives eviction, so
        # purge the predecessor's entry or the diff would mistake the
        # newcomer's first allocation for "unchanged" and never write its
        # rate. Rates only enter the map for *arrived* flows, and batch
        # workloads are globally unique, so the pop never fires outside
        # id-reusing streams (bit-identical no-op). ``flow_efficiency`` is
        # deliberately NOT purged: efficiency is an id-keyed property of
        # the simulation that dynamics may pre-register before the flow
        # arrives (inject_stragglers does), and it follows a reused id
        # until StragglerRecovery clears it.
        row_of = self._table.row_of
        prev_rates = self._prev_rates
        for f in coflow.flows:
            fid = f.flow_id
            if fid in row_of:
                raise SimulationError(f"duplicate flow id {fid}")
            if prev_rates:
                prev_rates.pop(fid, None)
        # DAG-released stages start counting CCT from their release instant.
        coflow.arrival_time = max(coflow.arrival_time, self._now)
        self._active_pos[coflow.coflow_id] = len(self.state.active_coflows)
        self.state.active_coflows.append(coflow)
        # Adopts the coflow's flows into the flow table (rows in ``flows``
        # order, so the legacy completion tie-break order is preserved).
        self.state.note_activated(coflow)
        self._coflow_of[coflow.coflow_id] = coflow
        if self._metrics is not None:
            self._metrics.inc("coflows.activated")
        if self._tracer is not None:
            self._tracer.instant(
                "coflow_arrival", self._now, "session",
                {"coflow": coflow.coflow_id, "width": coflow.width},
            )
        if self.machine_efficiency:
            # Flows arriving at a straggling machine inherit its efficiency
            # for the rest of the episode (StragglerEvent semantics).
            fe = self.flow_efficiency
            for f in coflow.flows:
                eff = self.machine_efficiency.get(f.src)
                if eff is not None:
                    fe[f.flow_id] = eff
        self.scheduler.on_coflow_arrival(coflow, self._now)
        tbl = self._table
        vol = tbl.volume
        bs = tbl.bytes_sent
        avail = tbl.available_time
        eps = self.config.epsilon_bytes
        now = self._now
        for i in coflow._rows:
            # Wake the scheduler when pipelined data becomes available
            # (§4.3), and catch zero-volume flows that are born complete.
            if avail[i] > now:
                self._events.push(
                    Event(avail[i], EventKind.DYNAMICS,
                          _DataAvailable(avail[i]))
                )
            if vol[i] - bs[i] <= eps:
                self._maybe_done.append((i, coflow))

    def _release_dependents_of(self, finished_id: int) -> None:
        waiters = self._dep_waiters.pop(finished_id, None)
        if not waiters:
            return
        for c in waiters:
            unmet = self._unmet_deps.get(c.coflow_id)
            if unmet is None:
                continue  # already released via another dependency list
            unmet.discard(finished_id)
            if not unmet:
                del self._unmet_deps[c.coflow_id]
                del self._waiting_dag[c.coflow_id]
                self._activate(c)

    # ---- scheduling ------------------------------------------------------------------

    def _request_resync(self, t: float) -> None:
        """Ask for a schedule recomputation, quantised to the δ grid."""
        delta = self.config.sync_interval
        if delta > 0:
            t = math.ceil((t - 1e-12) / delta) * delta
        if self._next_sync is None or t < self._next_sync:
            self._next_sync = t

    def _recompute_schedule(self) -> None:
        self._next_sync = None
        timers = self._timers
        if timers is None:
            allocation = self.scheduler.schedule(self.state, self._now)
            self.state.delta.clear()
            self._apply_allocation(allocation)
        else:
            _t0 = perf_counter_ns()
            allocation = self.scheduler.schedule(self.state, self._now)
            _t1 = perf_counter_ns()
            timers.add("schedule", _t1 - _t0)
            self.state.delta.clear()
            self._apply_allocation(allocation)
            timers.add("apply", perf_counter_ns() - _t1)
        self._result.reschedules += 1
        metrics = self._metrics
        if metrics is not None:
            metrics.inc("schedule.rounds")
            metrics.inc("admission.scheduled",
                        len(allocation.scheduled_coflows))
            metrics.inc("admission.work_conserved",
                        len(allocation.work_conserved_coflows))
            metrics.observe("schedule.flows_rated", len(allocation.rates))
        if self._tracer is not None:
            self._trace_round(allocation)
        if self._observer is not None:
            self._observer.on_schedule(self.state, allocation, self._now)
        wakeup = self.scheduler.next_wakeup(self.state, allocation, self._now)
        # Sub-nanosecond wakeups cannot advance float64 time at realistic
        # clock values; dropping them avoids reschedule storms.
        if wakeup is not None and wakeup > self._now + 1e-9:
            self._request_resync(wakeup)

    def _trace_round(self, allocation: Allocation) -> None:
        """Emit the per-round trace events (read-only over engine state)."""
        tracer = self._tracer
        now = self._now
        tracer.now = now
        tracer.instant(
            "schedule", now, "schedule",
            {"round": self._result.reschedules,
             "active": len(self.state.active_coflows),
             "scheduled": len(allocation.scheduled_coflows),
             "work_conserved": len(allocation.work_conserved_coflows),
             "flows_rated": len(allocation.rates)},
        )
        if tracer.wants("port"):
            self._trace_utilisation(tracer, now)

    def _trace_utilisation(self, tracer: "Tracer", now: float) -> None:
        """Per-port utilisation / link-saturation counters for one round.

        Walks the *applied* rates of the running rows — a pure read of the
        table columns after the allocation landed, so tracing can never
        perturb the allocation itself. In path-aware mode, link usage only
        reads the path map's existing cache (every granted flow's pair was
        assigned during allocation); it never triggers a path choice.
        """
        tbl = self._table
        rt = tbl.rate
        srcs = tbl.src
        dsts = tbl.dst
        usage: dict[int, float] = {}
        for i in self._running:
            r = rt[i]
            if r > 0.0:
                s = srcs[i]
                d = dsts[i]
                usage[s] = usage.get(s, 0.0) + r
                usage[d] = usage.get(d, 0.0) + r
        override = self.state.capacity_override
        port_rate = self.fabric.port_rate
        total_util = 0.0
        peak = 0.0
        saturated = 0
        for p, u in usage.items():
            cap = override.get(p, port_rate)
            util = u / cap if cap > 0.0 else 1.0
            total_util += util
            if util > peak:
                peak = util
            if util >= 0.999:
                saturated += 1
        n = len(usage)
        tracer.counter(
            "port_utilisation", now, "port",
            {"ports_active": n,
             "mean_util": total_util / n if n else 0.0,
             "peak_util": peak,
             "saturated": saturated},
        )
        if self._metrics is not None and n:
            self._metrics.observe("port.peak_util", peak)
            self._metrics.observe("port.mean_util", total_util / n)
        paths = self.state.paths
        if paths is None:
            return
        cache_get = paths._cache.get
        link_usage: dict[int, float] = {}
        for i in self._running:
            r = rt[i]
            if r > 0.0:
                for link in cache_get((srcs[i], dsts[i]), ()):
                    link_usage[link] = link_usage.get(link, 0.0) + r
        topology = self.state.topology
        sat_links = 0
        peak_link = 0.0
        for link, u in link_usage.items():
            cap = override.get(link)
            if cap is None:
                cap = topology.link_capacity(link)
            util = u / cap if cap > 0.0 else 1.0
            if util > peak_link:
                peak_link = util
            if util >= 0.999:
                sat_links += 1
        tracer.counter(
            "link_saturation", now, "port",
            {"links_active": len(link_usage),
             "peak_util": peak_link,
             "saturated": sat_links},
        )

    def _apply_allocation(self, allocation: Allocation) -> None:
        # The delta was just cleared and/or the running set may change:
        # the next advance must re-union progressed coflow ids.
        self._progressed_synced = False
        if self._epochs_engine:
            if self._full_apply_pending:
                self._full_apply_pending = False
                self._apply_full_epoch(allocation)
            else:
                self._apply_diff(allocation)
            return
        running: list[int] = []
        running_cids: set[int] = set()
        rates_get = allocation.rates.get
        efficiency = self.flow_efficiency
        perturb = self._rate_perturbation
        state = self.state
        now = self._now
        tbl = self._table
        fid = tbl.flow_id
        cidc = tbl.coflow_id
        ft = tbl.finish_time
        rt = tbl.rate
        st = tbl.start_time
        avail = tbl.available_time
        view = tbl.view
        for coflow in state.active_coflows:
            rows = state.pending_rows(coflow)
            if rows is None:  # pragma: no cover - engine states always track
                rows = []
            for i in rows:
                if ft[i] is not None:
                    continue
                rate = rates_get(fid[i], 0.0)
                if rate > 0:
                    if avail[i] > now:
                        # §4.3: data not yet produced cannot be sent. A
                        # scheduler that allocates here (availability-
                        # oblivious) has reserved the ports for nothing —
                        # the slot is wasted, which is the behaviour the
                        # data-unavailability experiment measures.
                        rate = 0.0
                    elif efficiency:
                        rate *= efficiency.get(fid[i], 1.0)
                    if rate > 0 and perturb is not None:
                        rate = perturb(view[i], rate)
                rate = rate if rate > 0.0 else 0.0
                rt[i] = rate
                if rate > 0:
                    running.append(i)
                    running_cids.add(cidc[i])
                    if st[i] is None:
                        st[i] = now
        self._running = running
        self._running_cids = frozenset(running_cids)
        if self._metrics is not None:
            self._metrics.inc("apply.rebuild")
        if self._tracer is not None:
            self._tracer.instant(
                "apply_rates", now, "epoch",
                {"running": len(running)},
            )

    def _apply_full_epoch(self, allocation: Allocation) -> None:
        """Full rebuild opening a fresh epoch baseline (first round or
        after dynamics mutated state in ways a diff cannot describe)."""
        self._go_cold()
        running = self._running
        running.clear()  # type: ignore[union-attr]  # kept: same dict object
        counts: dict[int, int] = {}
        gated: dict[int, None] = {}
        rates_get = allocation.rates.get
        efficiency = self.flow_efficiency
        state = self.state
        now = self._now
        tbl = self._table
        fid = tbl.flow_id
        cidc = tbl.coflow_id
        ft = tbl.finish_time
        rt = tbl.rate
        st = tbl.start_time
        avail = tbl.available_time
        for coflow in state.active_coflows:
            rows = state.pending_rows(coflow)
            if rows is None:  # pragma: no cover - engine states always track
                rows = []
            for i in rows:
                if ft[i] is not None:
                    continue
                rate = rates_get(fid[i], 0.0)
                if rate > 0:
                    if avail[i] > now:
                        rate = 0.0
                        gated[i] = None
                    elif efficiency:
                        rate *= efficiency.get(fid[i], 1.0)
                rate = rate if rate > 0.0 else 0.0
                rt[i] = rate
                if rate > 0:
                    running[i] = None  # type: ignore[index]
                    cid = cidc[i]
                    counts[cid] = counts.get(cid, 0) + 1
                    if st[i] is None:
                        st[i] = now
        self._running_count = counts
        self._running_cids = frozenset(counts)
        self._gated = gated
        self._prev_rates = allocation.rates
        if self._metrics is not None:
            self._metrics.inc("epoch.full")
        if self._tracer is not None:
            self._tracer.instant(
                "epoch_full", now, "epoch",
                {"running": len(running)},
            )

    def _apply_diff(self, allocation: Allocation) -> None:
        """Apply an allocation as a diff against the previous epoch.

        Only flows whose raw rate changed — plus availability-gated flows,
        whose effective rate can change with time alone — are touched;
        everyone else keeps rate, membership and heap entries. The diff is
        found with C-level dict-view set operations over the raw
        ``flow_id → rate`` maps, then applied through the table columns
        (one ``flow_id → row`` lookup per changed flow), so a quiet round
        costs O(changed) instead of O(active flows).
        """
        new = allocation.rates
        prev = self._prev_rates
        dropped = prev.keys() - new.keys()
        # Changed entries by direct probe: an int-keyed dict get plus a
        # float compare per entry beats hashing every (flow_id, rate) tuple
        # of both maps into item-view sets, especially for policies that
        # rewrite every rate every round. (A missing key probes as None,
        # which never equals a float rate, so additions are caught too.)
        fastcore = self._fastcore
        changed: list[tuple[int, float]]
        if fastcore:
            changed = _fc.core.diff_changed(new, prev)
        else:
            prev_get = prev.get
            changed = []
            changed_append = changed.append
            for item in new.items():
                if prev_get(item[0]) != item[1]:
                    changed_append(item)
        gated = self._gated
        running = self._running
        counts = self._running_count

        # Heap policy: high-churn rounds (UC-TCP rewrites global fair
        # shares every event) would push an entry per flow per event —
        # costlier than the plain scan — so the heap goes cold when the
        # churn fraction spikes. When several events share each
        # application window (δ > 0 batching completions), one seed scan
        # still amortises over the window's remaining events, so a reseed
        # is requested; back-to-back applications stay cold.
        churn = len(dropped) + len(changed)
        if self._metrics is not None:
            self._metrics.inc("epoch.diff")
            self._metrics.observe("epoch.churn", churn)
        if self._tracer is not None:
            self._tracer.instant(
                "rate_diff", self._now, "epoch",
                {"changed": len(changed), "dropped": len(dropped),
                 "running": len(running)},
            )
        if churn * 2 > len(running) + 1:
            self._go_cold()
            if self._events_since_apply >= 2:
                self._seed_pending = True
        elif not self._heap_live:
            self._seed_pending = True
        self._events_since_apply = 0
        track = self._heap_live
        # Epoch bumps exist to invalidate heap entries; while the heap is
        # cold it is empty (go_cold clears it, and a partial seed aborts by
        # clearing again), so there is nothing to invalidate and the
        # per-row counter churn can be skipped entirely. Entries seeded
        # later capture whatever epoch values are current.
        bump_epochs = track

        tbl = self._table
        if fastcore:
            if self._metrics is not None:
                self._metrics.inc("kernel.apply_diff.fastcore")
            members_changed = _fc.core.apply_diff(
                dropped, changed, new, tbl.row_of, tbl.flow_id,
                tbl.coflow_id, tbl.finish_time, tbl.rate, tbl.start_time,
                tbl.available_time, tbl.epoch, running, counts, gated,
                self._unheaped, self.flow_efficiency, self._now, track,
                bump_epochs,
            )
            self._prev_rates = new
            if members_changed:
                self._running_cids = frozenset(counts)
            return
        if self._metrics is not None:
            self._metrics.inc("kernel.apply_diff.python")
        row_of_get = tbl.row_of.get
        fid = tbl.flow_id
        cidc = tbl.coflow_id
        ft = tbl.finish_time
        rt = tbl.rate
        st = tbl.start_time
        avail = tbl.available_time
        ep = tbl.epoch
        unheaped = self._unheaped
        efficiency = self.flow_efficiency
        now = self._now
        members_changed = False

        for dropped_fid in dropped:
            i = row_of_get(dropped_fid)
            if i is None:
                continue  # evicted with its finished coflow
            if ft[i] is None and rt[i] != 0.0:
                rt[i] = 0.0
                if bump_epochs:
                    ep[i] += 1
            if i in running:
                del running[i]  # type: ignore[union-attr]
                members_changed = True
                cid = cidc[i]
                left = counts[cid] - 1
                if left > 0:
                    counts[cid] = left
                else:
                    del counts[cid]
            if gated:
                gated.pop(i, None)
            if unheaped:
                unheaped.pop(i, None)

        if gated:
            # Unchanged raw rate, but the availability window may have
            # opened since the last round: always re-evaluate. Snapshot
            # (by flow id) before the changed-entry pass below mutates
            # ``gated`` — the legacy behaviour built its processing list
            # up front.
            new_get = new.get
            gated_pairs = [(fid[i], new_get(fid[i], 0.0)) for i in gated]
            pairs = chain(changed, gated_pairs)
        else:
            # ``changed`` is iterated directly: an intermediate (row, rate)
            # list would cost a tuple per flow on policies that rewrite
            # every rate every round.
            pairs = changed
        for changed_fid, raw in pairs:
            i = row_of_get(changed_fid)
            if i is None:
                continue  # evicted with its finished coflow
            if ft[i] is not None:
                continue
            rate = raw
            if rate > 0:
                if avail[i] > now:
                    rate = 0.0
                    gated[i] = None
                else:
                    if gated:
                        gated.pop(i, None)
                    if efficiency:
                        rate *= efficiency.get(fid[i], 1.0)
            if rate <= 0.0:
                rate = 0.0
            if rate != rt[i]:
                rt[i] = rate
                if bump_epochs:
                    ep[i] += 1
                if rate > 0:
                    if i not in running:
                        running[i] = None  # type: ignore[index]
                        members_changed = True
                        cid = cidc[i]
                        counts[cid] = counts.get(cid, 0) + 1
                    if track:
                        unheaped[i] = None
                    if st[i] is None:
                        st[i] = now
                else:
                    if i in running:
                        del running[i]  # type: ignore[union-attr]
                        members_changed = True
                        cid = cidc[i]
                        left = counts[cid] - 1
                        if left > 0:
                            counts[cid] = left
                        else:
                            del counts[cid]
                    if unheaped:
                        unheaped.pop(i, None)
        self._prev_rates = new
        if members_changed:
            self._running_cids = frozenset(counts)

    # ---- diagnostics --------------------------------------------------------------------

    def _raise_stuck(self) -> None:
        stuck = [
            c.coflow_id
            for c in self.state.active_coflows
            if not c.all_flows_finished()
        ]
        waiting = sorted(self._waiting_dag)
        raise SimulationError(
            f"simulation stalled at t={self._now}: no future events, "
            f"active coflows {stuck}, DAG-blocked coflows {waiting}. "
            f"This usually means the scheduler allocated zero rate to every "
            f"remaining flow, or a DAG dependency cycle exists."
        )

    @staticmethod
    def _validate_workload(coflows: list[CoFlow]) -> None:
        validate_workload(coflows)


@dataclass
class _DataAvailable:
    """Internal no-op dynamics action: wakes the scheduler when pipelined
    data becomes available (§4.3)."""

    time: float

    def apply(self, sim: SimulationSession, now: float) -> None:
        """No state change needed — the reschedule itself is the effect."""
