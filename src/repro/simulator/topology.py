"""Multi-tier fabric topologies: link graphs, paths and the link ledger.

The paper evaluates Saath on a non-blocking big switch (§6), and
:class:`~repro.simulator.fabric.Fabric` models exactly that: congestion can
only occur at host ingress/egress ports. This module generalises the fabric
into a *topology* — a graph of capacitated links — so oversubscribed
datacenter networks become simulable without touching the big-switch
default:

* :class:`Topology` — the abstraction: a host-port :class:`Fabric` plus
  zero or more *core links*, and a mapping from a ``(src port, dst port)``
  pair to the core links its traffic crosses.
* :class:`BigSwitchTopology` — the degenerate case: no core links, every
  path is ``(sender port, receiver port)``. Simulations configured with it
  are byte-identical to the plain-fabric default **by construction** (no
  path machinery engages).
* :class:`LeafSpineTopology` — racks of hosts behind leaf switches, leaves
  connected to every spine, with a configurable oversubscription ratio.
  Rack-local traffic never leaves the leaf; cross-rack traffic crosses one
  leaf→spine uplink and one spine→leaf downlink chosen by a pluggable
  *path selector* (ECMP hash, least-loaded, static).
* :class:`PathMap` — the per-run path assignment: caches the chosen core
  links per ``(src, dst)`` pair and carries the selector's state.
* :class:`LinkLedger` — the residual-capacity ledger over *every* link.
  It extends the dense :class:`~repro.simulator.fabric.PortLedger` columns
  (``capacity_list`` / ``used_list`` / ``touched_set``) to core links and
  overrides the commit/fill primitives to charge a flow's whole path, so
  schedulers that allocate through the ledger see the true bottleneck link
  without knowing the topology.
* :class:`TopologySpec` — a picklable, hashable recipe (kind,
  oversubscription, racks, spines, selector) that the CLI and the sweep
  runner use to rebuild a topology in worker processes and content-hash it
  into result-cache keys.

Link identifiers extend the fabric's dense port-id scheme: host ports keep
ids ``0 .. 2n-1`` and core links occupy ``2n .. num_links-1``, so every
per-link column is a flat list indexed by link id and the existing
port-indexed code paths work unchanged on a :class:`LinkLedger`.
"""

from __future__ import annotations

import abc
import math
from array import array
from dataclasses import dataclass, fields

from ..errors import CapacityViolationError, ConfigError
from .fabric import _CAPACITY_TOLERANCE, Fabric, PortLedger

#: Registered path-selection strategies (see :meth:`PathMap._choose`).
PATH_SELECTORS = ("ecmp", "least-loaded", "static")


class Topology(abc.ABC):
    """A fabric plus a (possibly empty) graph of capacitated core links.

    Concrete topologies define the link-id space above the host ports and
    the candidate core-link paths between two host ports; everything else
    (ledgers, allocators, schedulers) consumes the topology through this
    interface and stays geometry-agnostic.
    """

    #: Path-selector name used when a :class:`PathMap` is built from this
    #: topology (one of :data:`PATH_SELECTORS`).
    path_select: str = "ecmp"

    @property
    @abc.abstractmethod
    def fabric(self) -> Fabric:
        """The host-port fabric this topology is built over."""

    @property
    @abc.abstractmethod
    def num_links(self) -> int:
        """Total number of links: host ports first, then core links."""

    @property
    def num_core_links(self) -> int:
        """Number of links beyond the host ports (0 = big switch)."""
        return self.num_links - self.fabric.num_ports

    def core_links(self) -> range:
        """Ids of the core links (empty for a big switch)."""
        return range(self.fabric.num_ports, self.num_links)

    @abc.abstractmethod
    def link_capacity(self, link: int) -> float:
        """Capacity of ``link`` in bytes/second.

        Raises :class:`~repro.errors.ConfigError` naming the offending
        link id when it is outside ``[0, num_links)``.
        """

    @abc.abstractmethod
    def path_candidates(
        self, src: int, dst: int
    ) -> list[tuple[int, ...]]:
        """Candidate core-link paths from sender port ``src`` to receiver
        port ``dst``, one tuple per choice (e.g. one per spine).

        An empty list means the pair needs no core links (big switch, or
        rack-local traffic) — its path is just ``(src, dst)``.
        """

    def link_name(self, link: int) -> str:
        """Human-readable name of ``link`` (diagnostics and errors)."""
        fabric = self.fabric
        if fabric.is_sender_port(link):
            return f"host{link}-up"
        if fabric.is_receiver_port(link):
            return f"host{fabric.machine_of(link)}-down"
        return f"core{link}"

    def _check_link(self, link: int) -> None:
        if not 0 <= link < self.num_links:
            raise ConfigError(
                f"link {link} out of range [0, {self.num_links}) "
                f"for {type(self).__name__}"
            )


class BigSwitchTopology(Topology):
    """The paper's non-blocking big switch as a topology.

    No core links exist, so every flow's path is exactly its sender and
    receiver port and the simulation is byte-identical to running on the
    bare :class:`~repro.simulator.fabric.Fabric` — the path-aware machinery
    never engages (``num_core_links == 0``).
    """

    def __init__(self, fabric: Fabric):
        self._fabric = fabric

    @property
    def fabric(self) -> Fabric:
        return self._fabric

    @property
    def num_links(self) -> int:
        return self._fabric.num_ports

    def link_capacity(self, link: int) -> float:
        self._check_link(link)
        return self._fabric.capacity(link)

    def path_candidates(self, src: int, dst: int) -> list[tuple[int, ...]]:
        return []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BigSwitchTopology(machines={self._fabric.num_machines})"


class LeafSpineTopology(Topology):
    """An oversubscribed two-tier leaf–spine fabric.

    Machines are packed into ``racks`` contiguous racks (machine ``i``
    lives in rack ``i // ceil(n / racks)``); each rack's leaf switch
    connects to every spine with one uplink and one downlink. A rack with
    ``h`` hosts offers ``h · port_rate`` of edge bandwidth; its total
    fabric bandwidth is that divided by ``oversub``, split equally across
    the ``spines`` uplinks (and, symmetrically, downlinks):

    ``capacity(leaf r ↔ spine s) = rack_size(r) · port_rate / (oversub · spines)``

    ``oversub = 1`` is a rack-level non-blocking fabric (per-spine hash
    collisions can still congest individual uplinks — as in real ECMP
    fabrics); ``oversub = 4`` is the classic 4:1 oversubscribed edge.

    Rack-local flows never touch core links; cross-rack flows cross
    exactly two (uplink at the source rack, downlink at the destination
    rack), both attached to the spine chosen by the path selector.
    """

    def __init__(
        self,
        fabric: Fabric,
        *,
        racks: int | None = None,
        spines: int | None = None,
        oversub: float = 1.0,
        path_select: str = "ecmp",
    ):
        n = fabric.num_machines
        if racks is None:
            racks = min(n, max(2, int(round(math.sqrt(n)))))
        if spines is None:
            spines = 2
        if not 1 <= racks <= n:
            raise ConfigError(
                f"racks must be in [1, {n}] for {n} machines, got {racks}"
            )
        if spines < 1:
            raise ConfigError(f"spines must be >= 1, got {spines}")
        if oversub <= 0:
            raise ConfigError(
                f"oversubscription ratio must be positive, got {oversub}"
            )
        if path_select not in PATH_SELECTORS:
            raise ConfigError(
                f"unknown path selector {path_select!r}; "
                f"known: {PATH_SELECTORS}"
            )
        self._fabric = fabric
        self.racks = racks
        self.spines = spines
        self.oversub = float(oversub)
        self.path_select = path_select
        #: Hosts per rack (last rack may be smaller when n % racks != 0).
        self._rack_stride = math.ceil(n / racks)
        #: Per-rack host count, used to size each rack's fabric bandwidth.
        self._rack_size = [0] * racks
        for machine in range(n):
            self._rack_size[machine // self._rack_stride] += 1
        if 0 in self._rack_size:
            raise ConfigError(
                f"racks={racks} leaves empty racks for {n} machines; "
                f"use at most {math.ceil(n / self._rack_stride)} racks"
            )
        #: Per-(rack, spine) core-link capacity, precomputed.
        rate = fabric.port_rate
        self._core_capacity = [
            self._rack_size[r] * rate / (self.oversub * spines)
            for r in range(racks)
            for _ in range(spines)
        ]
        #: Candidate core-link paths per (src rack, dst rack), one per
        #: spine, built lazily (pair space is racks², typically tiny).
        self._candidates: dict[tuple[int, int], list[tuple[int, int]]] = {}

    # ---- geometry ----------------------------------------------------------

    @property
    def fabric(self) -> Fabric:
        return self._fabric

    @property
    def num_links(self) -> int:
        return self._fabric.num_ports + 2 * self.racks * self.spines

    def rack_of(self, machine: int) -> int:
        """Rack index of ``machine``."""
        self._fabric._check_machine(machine)
        return machine // self._rack_stride

    def rack_size(self, rack: int) -> int:
        """Number of hosts in ``rack``."""
        if not 0 <= rack < self.racks:
            raise ConfigError(
                f"rack {rack} out of range [0, {self.racks})"
            )
        return self._rack_size[rack]

    def uplink(self, rack: int, spine: int) -> int:
        """Link id of the leaf(``rack``) → spine(``spine``) uplink."""
        return (self._fabric.num_ports
                + 2 * (rack * self.spines + spine))

    def downlink(self, rack: int, spine: int) -> int:
        """Link id of the spine(``spine``) → leaf(``rack``) downlink."""
        return self.uplink(rack, spine) + 1

    def link_capacity(self, link: int) -> float:
        self._check_link(link)
        ports = self._fabric.num_ports
        if link < ports:
            return self._fabric.capacity(link)
        return self._core_capacity[(link - ports) // 2]

    def link_name(self, link: int) -> str:
        ports = self._fabric.num_ports
        if link < ports:
            return super().link_name(link)
        pair, down = divmod(link - ports, 2)
        rack, spine = divmod(pair, self.spines)
        if down:
            return f"spine{spine}->leaf{rack}"
        return f"leaf{rack}->spine{spine}"

    def path_candidates(self, src: int, dst: int) -> list[tuple[int, ...]]:
        fabric = self._fabric
        src_rack = self.rack_of(fabric.machine_of(src))
        dst_rack = self.rack_of(fabric.machine_of(dst))
        if src_rack == dst_rack:
            return []
        key = (src_rack, dst_rack)
        candidates = self._candidates.get(key)
        if candidates is None:
            candidates = [
                (self.uplink(src_rack, s), self.downlink(dst_rack, s))
                for s in range(self.spines)
            ]
            self._candidates[key] = candidates
        return candidates

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LeafSpineTopology(machines={self._fabric.num_machines}, "
            f"racks={self.racks}, spines={self.spines}, "
            f"oversub={self.oversub}, path_select={self.path_select!r})"
        )


class PathMap:
    """Per-run assignment of core-link paths to ``(src, dst)`` port pairs.

    The map is the mutable companion of an immutable topology: it caches
    the selector's choice per pair (a pair's path is stable for the whole
    run, like a real fabric's per-connection ECMP hash) and carries the
    selector's state (the least-loaded counters). One map belongs to one
    simulation — sharing it across runs would leak selector state.

    Selectors:

    * ``ecmp`` — a deterministic integer hash of the port pair picks the
      spine, modelling flow-hash load balancing (collisions included);
    * ``least-loaded`` — the candidate whose links carry the fewest
      already-assigned pairs wins (ties to the lowest spine index),
      modelling an adaptive fabric controller;
    * ``static`` — always the first candidate (spine 0): the degenerate
      single-path fabric, useful as a worst-case baseline.
    """

    __slots__ = ("topology", "selector", "_cache", "_assigned", "tracer")

    def __init__(self, topology: Topology, selector: str | None = None):
        self.topology = topology
        self.selector = selector or topology.path_select
        if self.selector not in PATH_SELECTORS:
            raise ConfigError(
                f"unknown path selector {self.selector!r}; "
                f"known: {PATH_SELECTORS}"
            )
        #: (src, dst) -> chosen core-link tuple (possibly empty).
        self._cache: dict[tuple[int, int], tuple[int, ...]] = {}
        #: link -> number of pairs assigned to it (least-loaded state).
        self._assigned: dict[int, int] = {}
        #: Optional observability tracer recording path assignments
        #: (attached by the session; None = disabled).
        self.tracer = None

    def extra_links(self, src: int, dst: int) -> tuple[int, ...]:
        """Core links the ``src → dst`` path crosses (``()`` if none)."""
        key = (src, dst)
        path = self._cache.get(key)
        if path is None:
            path = self._choose(src, dst)
            self._cache[key] = path
        return path

    def _choose(self, src: int, dst: int) -> tuple[int, ...]:
        candidates = self.topology.path_candidates(src, dst)
        if not candidates:
            return ()
        if len(candidates) == 1 or self.selector == "static":
            chosen = candidates[0]
        elif self.selector == "ecmp":
            # Deterministic pair hash (Knuth multiplicative mixing): the
            # same pair always lands on the same spine, different pairs
            # spread uniformly — and unlike Python's str hash it is stable
            # across processes, so sweep-runner results are reproducible.
            h = (src * 2654435761 + dst * 40503) & 0xFFFFFFFF
            chosen = candidates[h % len(candidates)]
        else:  # least-loaded
            assigned = self._assigned
            chosen = min(
                candidates,
                key=lambda path: max(assigned.get(l, 0) for l in path),
            )
        if self.selector == "least-loaded":
            assigned = self._assigned
            for link in chosen:
                assigned[link] = assigned.get(link, 0) + 1
        tracer = self.tracer
        if tracer is not None:
            # A pair's path is chosen once per run, so this fires
            # O(pairs) times — never inside a hot loop.
            tracer.instant(
                "path_assign", tracer.now, "path",
                {"src": src, "dst": dst, "links": list(chosen),
                 "selector": self.selector},
            )
        return chosen

    def assigned_pairs(self) -> dict[tuple[int, int], tuple[int, ...]]:
        """Copy of the pair → path assignments made so far (diagnostics)."""
        return dict(self._cache)


class LinkLedger(PortLedger):
    """Residual-capacity ledger over every link of a multi-tier topology.

    Extends the :class:`~repro.simulator.fabric.PortLedger` struct-of-
    arrays layout — ``capacity_list`` / ``used_list`` indexed by link id,
    with touched-set O(changed links) reset — to the topology's core links,
    and overrides the three allocation primitives (:meth:`commit`,
    :meth:`fill`, :meth:`fill_capped`) to charge a flow's *entire path*:
    the host ports plus the core links the attached :class:`PathMap`
    assigns to the ``(src, dst)`` pair. Schedulers and allocators that go
    through these primitives therefore see the true bottleneck link with
    no topology knowledge; the path-aware allocator twins in
    :mod:`repro.simulator.ratealloc` additionally read the dense lists
    directly for their fill loops.
    """

    __slots__ = ("_topology", "_paths")

    def __init__(
        self,
        topology: Topology,
        paths: PathMap,
        capacity_override: dict[int, float] | None = None,
    ):
        self._fabric = topology.fabric
        self._metrics = None
        self._topology = topology
        self._paths = paths
        num_links = topology.num_links
        self._capacity = array(
            "d", [topology.link_capacity(link) for link in range(num_links)]
        )
        if capacity_override:
            for link, cap in capacity_override.items():
                if not 0 <= link < num_links:
                    raise ConfigError(
                        f"capacity override for unknown link {link}: "
                        f"topology has links [0, {num_links})"
                    )
                if cap < 0:
                    raise ConfigError(
                        f"capacity override for link {link} must be >= 0, "
                        f"got {cap}"
                    )
                self._capacity[link] = cap
        self._used = array("d", bytes(8 * num_links))
        self._touched = set()

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def paths(self) -> PathMap:
        return self._paths

    def extra_links(self, src: int, dst: int) -> tuple[int, ...]:
        """Core links on the ``src → dst`` path (delegates to the map)."""
        return self._paths.extra_links(src, dst)

    # ---- path-charging primitives -----------------------------------------

    def commit(self, src: int, dst: int, rate: float) -> None:
        """Reserve ``rate`` on the sender, the receiver and every core
        link of the pair's path; raises
        :class:`~repro.errors.CapacityViolationError` naming the first
        over-committed link."""
        if rate < 0:
            raise ConfigError(f"rate must be >= 0, got {rate}")
        if rate == 0:
            return
        if self._metrics is not None:
            self._metrics.inc("ledger.commit")
        used = self._used
        capacity = self._capacity
        touched = self._touched
        extras = self._paths.extra_links(src, dst)
        for link in (src, dst, *extras):
            touched.add(link)
            cap = capacity[link]
            new_used = used[link] + rate
            if new_used > cap * _CAPACITY_TOLERANCE:
                raise CapacityViolationError(str(link), new_used, cap)
            used[link] = new_used if new_used < cap else cap

    def fill(self, src: int, dst: int) -> float:
        """Commit and return the smallest residual along the whole path."""
        if self._metrics is not None:
            self._metrics.inc("ledger.fill")
        used = self._used
        capacity = self._capacity
        extras = self._paths.extra_links(src, dst)
        rate = capacity[src] - used[src]
        other = capacity[dst] - used[dst]
        if other < rate:
            rate = other
        for link in extras:
            other = capacity[link] - used[link]
            if other < rate:
                rate = other
        if rate <= 0:
            return 0.0
        touched = self._touched
        for link in (src, dst, *extras):
            used[link] += rate
            touched.add(link)
        return rate

    def fill_capped(self, src: int, dst: int, cap: float) -> float:
        """Path-aware twin of :meth:`PortLedger.fill_capped`: the grant is
        additionally bounded by every core link's residual (an exhausted
        core link behaves like an exhausted receiver — 0.0, no commit);
        the ``-1.0`` sender-exhausted sentinel is unchanged."""
        if self._metrics is not None:
            self._metrics.inc("ledger.fill_capped")
        used = self._used
        capacity = self._capacity
        rate = capacity[src] - used[src]
        if rate <= 0:
            return -1.0
        other = capacity[dst] - used[dst]
        if other < rate:
            rate = other
        extras = self._paths.extra_links(src, dst)
        for link in extras:
            other = capacity[link] - used[link]
            if other < rate:
                rate = other
        if cap < rate:
            rate = cap
        if rate <= 0:
            return 0.0
        touched = self._touched
        for link in (src, dst, *extras):
            new_used = used[link] + rate
            link_cap = capacity[link]
            used[link] = new_used if new_used < link_cap else link_cap
            touched.add(link)
        return rate

    def snapshot_residuals(self) -> dict[int, float]:
        """Copy of per-link residual capacity (diagnostics/tests)."""
        return {
            link: self.residual(link)
            for link in range(len(self._capacity))
        }


@dataclass(frozen=True)
class TopologySpec:
    """Picklable recipe for a topology, hashable into sweep cache keys.

    ``kind`` is ``"big-switch"`` (the default; every other knob must stay
    at its default) or ``"leaf-spine"``. ``racks`` / ``spines`` of ``None``
    pick :class:`LeafSpineTopology`'s size-derived defaults. The spec is
    *content identity*: :meth:`encode` produces a canonical tuple that the
    sweep runner hashes into :class:`~repro.experiments.runner.RunSpec`
    cache keys — the big-switch default encodes to ``()`` so default run
    keys stay byte-compatible with the pre-topology cache format.
    """

    kind: str = "big-switch"
    oversub: float = 1.0
    racks: int | None = None
    spines: int | None = None
    path_select: str = "ecmp"

    def __post_init__(self) -> None:
        if self.kind not in ("big-switch", "leaf-spine"):
            raise ConfigError(
                f"unknown topology kind {self.kind!r}; "
                f"known: big-switch, leaf-spine"
            )
        if self.oversub <= 0:
            raise ConfigError(
                f"oversubscription ratio must be positive, "
                f"got {self.oversub}"
            )
        if self.path_select not in PATH_SELECTORS:
            raise ConfigError(
                f"unknown path selector {self.path_select!r}; "
                f"known: {PATH_SELECTORS}"
            )
        if self.kind == "big-switch" and (
                self.oversub != 1.0 or self.racks is not None
                or self.spines is not None or self.path_select != "ecmp"):
            raise ConfigError(
                "big-switch topology takes no oversub/racks/spines/"
                "path_select customisation (it has a single path); "
                "use kind='leaf-spine'"
            )

    def build(self, fabric: Fabric) -> Topology:
        """Instantiate the topology over ``fabric``."""
        if self.kind == "big-switch":
            return BigSwitchTopology(fabric)
        return LeafSpineTopology(
            fabric,
            racks=self.racks,
            spines=self.spines,
            oversub=self.oversub,
            path_select=self.path_select,
        )

    def encode(self) -> tuple:
        """Canonical, hashable, JSON-able content identity.

        The big-switch default encodes to ``()``; a leaf-spine spec
        encodes every field as ``(name, value)`` pairs in field order.
        """
        if self.kind == "big-switch":
            return ()
        return tuple(
            (f.name, getattr(self, f.name)) for f in fields(self)
        )

    @staticmethod
    def decode(encoded) -> "TopologySpec":
        """Rebuild a spec from :meth:`encode` output (tuples or the JSON
        list-of-lists round-trip)."""
        if not encoded:
            return TopologySpec()
        return TopologySpec(**{str(k): v for k, v in encoded})
