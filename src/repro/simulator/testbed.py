"""Testbed mode: imperfection model standing in for the Azure deployment.

The paper's §7 numbers come from a 150-node Azure testbed running the C++
prototype over real TCP. Two effects separate that environment from the
idealised simulator and explain why the testbed CDF (Fig. 15) has both a
sub-1 tail and a long >1 tail:

1. **Schedule staleness** — local agents keep following the previous
   schedule until a new one arrives (coordinator computes every δ and the
   push takes time). Reproduced with the engine's ``sync_interval``.
2. **Imperfect rate enforcement** — application-layer pacing over TCP never
   achieves exactly the allocated rate; achieved throughput jitters below
   (and occasionally at) the allocation.

:class:`RateJitter` models (2) as a multiplicative efficiency drawn per
(flow, schedule-application): ``achieved = allocated * eta``, with ``eta``
sampled from a truncated normal around ``mean_efficiency``. Pass it as the
engine's ``rate_perturbation`` hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import PAPER_SYNC_INTERVAL, SimulationConfig
from ..errors import ConfigError
from ..rng import make_rng
from .flows import Flow


@dataclass
class RateJitter:
    """Multiplicative achieved-rate noise for testbed mode.

    ``eta ~ clip(Normal(mean_efficiency, sigma), lo, 1.0)``; each flow
    re-draws whenever a new schedule is applied, so long flows average out
    while short flows can be noticeably lucky/unlucky — matching the wide
    per-coflow spread of Fig. 15.
    """

    mean_efficiency: float = 0.9
    sigma: float = 0.08
    floor: float = 0.5
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0 < self.mean_efficiency <= 1:
            raise ConfigError(
                f"mean_efficiency must be in (0, 1], got {self.mean_efficiency}"
            )
        if not 0 <= self.floor <= self.mean_efficiency:
            raise ConfigError("floor must be in [0, mean_efficiency]")
        self._rng = make_rng(self.seed)

    def __call__(self, flow: Flow, allocated_rate: float) -> float:
        eta = self._rng.normal(self.mean_efficiency, self.sigma)
        eta = float(np.clip(eta, self.floor, 1.0))
        return allocated_rate * eta


def testbed_config(base: SimulationConfig | None = None,
                   *, sync_interval: float = PAPER_SYNC_INTERVAL
                   ) -> SimulationConfig:
    """A config with the paper's coordinator timing (δ = 8 ms) switched on."""
    base = base or SimulationConfig()
    return base.with_updates(sync_interval=sync_interval)
