"""Event types and the event queue driving the discrete-event engine.

The engine is a fluid-flow discrete-event simulator: between events all flow
rates are constant, so the only instants at which anything interesting can
happen are enumerated here. External events (arrivals, dynamics) are queued
ahead of time; *derived* events (flow completions, threshold crossings) are
recomputed from the current allocation after every step and therefore never
enter the queue — see :mod:`repro.simulator.engine`.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any


class EventKind(enum.Enum):
    """External event categories, in tie-break priority order.

    When several events share a timestamp, completions conceptually precede
    arrivals (a freed port is visible to the arriving coflow's first
    schedule); the engine handles same-time batching, and this ordering only
    breaks ties deterministically inside the queue.
    """

    COFLOW_ARRIVAL = 1
    DYNAMICS = 2  # failure / straggler / link events
    SYNC = 3  # coordinator sync boundary (δ grid)

    def __lt__(self, other: "EventKind") -> bool:
        return self.value < other.value


@dataclass(frozen=True, slots=True)
class Event:
    """One timestamped external event.

    ``payload`` is kind-specific: the :class:`~repro.simulator.flows.CoFlow`
    for arrivals, a dynamics action object for ``DYNAMICS``, ``None`` for
    ``SYNC``.
    """

    time: float
    kind: EventKind
    payload: Any = None


@dataclass(order=True, slots=True)
class _HeapEntry:
    time: float
    kind: EventKind
    seq: int
    event: Event = field(compare=False)


class EventQueue:
    """A stable min-heap of :class:`Event` ordered by (time, kind, insertion).

    Stability matters for reproducibility: two coflows arriving at the same
    instant are delivered in insertion order, which trace loaders make the
    trace order.
    """

    def __init__(self) -> None:
        self._heap: list[_HeapEntry] = []
        self._counter = itertools.count()

    def push(self, event: Event) -> None:
        if event.time < 0:
            raise ValueError(f"event time must be >= 0, got {event.time}")
        heapq.heappush(
            self._heap,
            _HeapEntry(event.time, event.kind, next(self._counter), event),
        )

    def push_all(self, events: list[Event]) -> None:
        for e in events:
            self.push(e)

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        return heapq.heappop(self._heap).event

    def peek_time(self) -> float | None:
        """Timestamp of the earliest pending event, or ``None`` if empty."""
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
