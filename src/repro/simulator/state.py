"""Cluster state exposed to schedulers.

:class:`ClusterState` is the schedulers' *only* window into the simulation:
the set of active (arrived, unfinished) coflows, the fabric geometry, and
per-port capacity overrides from dynamics. Online schedulers must not touch
``Flow.volume`` / ``Flow.remaining`` — the clairvoyant baselines (Varys, SCF,
SRTF, LWTF) are explicitly allowed to, and are marked as offline in their
docstrings.

Incremental scheduling support lives here too:

* :class:`SchedulingDelta` — the dirty set accumulated by the engine between
  scheduler invocations (arrived / completed / progressed coflows), so
  schedulers can update their bookkeeping from the change instead of
  rescanning the world every round;
* per-coflow *pending flow* caches, so per-round flow gathering walks only
  unfinished flows instead of every flow ever submitted;
* a reusable :class:`~repro.simulator.fabric.PortLedger` cleared in
  O(changed ports) per round via :meth:`ClusterState.acquire_ledger`;
* per-coflow *flow-group compaction* (``epochs`` engine): ``(src, dst)``
  -bucketed pending-flow groups and per-port pending-flow counts maintained
  incrementally from the engine's completion notifications, so rate
  allocators and admission checks work in O(groups)/O(ports) instead of
  recounting every flow each round (:meth:`ClusterState.port_counts`,
  :meth:`ClusterState.flow_groups`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .fabric import Fabric, PortLedger
from .flows import CoFlow, Flow


@dataclass(slots=True)
class SchedulingDelta:
    """What changed since the scheduler last ran (the engine's dirty set).

    ``full`` forces a from-scratch rebuild of any incremental bookkeeping:
    it is set for the very first round and whenever a dynamics action
    mutates state in ways the delta cannot describe (flow restarts, port
    capacity changes, …). The remaining fields are coflow-id sets:

    * ``arrived`` — became active (arrival or DAG release);
    * ``completed`` — finished entirely and left ``active_coflows``;
    * ``flow_completed`` — still active but lost at least one flow, so
      their port footprint may have shrunk;
    * ``progressed`` — had at least one flow moving bytes, so their queue
      metrics (total / max per-flow bytes sent) may have grown.
    """

    full: bool = True
    arrived: set[int] = field(default_factory=set)
    completed: set[int] = field(default_factory=set)
    flow_completed: set[int] = field(default_factory=set)
    progressed: set[int] = field(default_factory=set)

    def clear(self) -> None:
        """Reset after a scheduler consumed the delta."""
        self.full = False
        self.arrived.clear()
        self.completed.clear()
        self.flow_completed.clear()
        self.progressed.clear()

    def mark_full(self) -> None:
        """Request a from-scratch rebuild on the next scheduling round."""
        self.full = True


@dataclass
class ClusterState:
    """Snapshot handed to :meth:`repro.schedulers.base.Scheduler.schedule`."""

    fabric: Fabric
    #: Active coflows in arrival order (arrived, not yet finished, and with
    #: DAG dependencies satisfied).
    active_coflows: list[CoFlow] = field(default_factory=list)
    #: Per-port capacity overrides (bytes/s) from dynamics events; ports not
    #: listed run at ``fabric.port_rate``.
    capacity_override: dict[int, float] = field(default_factory=dict)
    #: When False, ``schedulable_flows`` ignores data availability — an
    #: availability-*oblivious* coordinator that wastes slots on flows with
    #: no data to send (the §4.3 counterfactual; the engine still refuses
    #: to move unavailable bytes).
    respect_availability: bool = True
    #: Changes since the last scheduling round (maintained by the engine).
    delta: SchedulingDelta = field(default_factory=SchedulingDelta)

    # Internal caches; never part of the public snapshot semantics.
    _by_id: dict[int, CoFlow] = field(default_factory=dict, repr=False)
    _pending: dict[int, list[Flow]] = field(default_factory=dict, repr=False)
    _cached_ledger: PortLedger | None = field(default=None, repr=False)
    _cached_override: dict[int, float] | None = field(default=None, repr=False)
    #: coflow_id -> {port: number of pending flows touching it} (compaction).
    _port_counts: dict[int, dict[int, int]] = field(
        default_factory=dict, repr=False
    )
    #: coflow_id -> {(src, dst): [pending flows]} (compaction).
    _groups: dict[int, dict[tuple[int, int], list[Flow]]] = field(
        default_factory=dict, repr=False
    )
    #: coflow_id -> max ``available_time`` over its flows (static bound used
    #: to decide when the compaction caches equal the schedulable set).
    _max_avail: dict[int, float] = field(default_factory=dict, repr=False)
    #: Coflow ids whose pending cache is kept exact by live engine
    #: notifications (vs. built lazily for a hand-assembled state, where it
    #: may go stale and callers must re-filter).
    _exact_pending: set[int] = field(default_factory=set, repr=False)

    # ---- ledgers ----------------------------------------------------------

    def make_ledger(self) -> PortLedger:
        """Fresh residual-capacity ledger honouring dynamic overrides."""
        return PortLedger(self.fabric, capacity_override=self.capacity_override)

    def acquire_ledger(self) -> PortLedger:
        """A pristine ledger, reusing the previous round's in O(changed ports).

        Equivalent to :meth:`make_ledger` but clears the cached ledger's
        commitments instead of rebuilding the per-port tables. The cache is
        discarded whenever ``capacity_override`` changed since it was built
        (dynamics events), so overrides are always honoured.
        """
        ledger = self._cached_ledger
        if ledger is None or self._cached_override != self.capacity_override:
            ledger = PortLedger(
                self.fabric, capacity_override=self.capacity_override
            )
            self._cached_ledger = ledger
            self._cached_override = dict(self.capacity_override)
        else:
            ledger.reset()
        return ledger

    # ---- flow queries -----------------------------------------------------

    def schedulable_flows(self, coflow: CoFlow, now: float) -> list[Flow]:
        """Unfinished flows of ``coflow`` whose data is available at ``now``.

        Models §4.3 "un-availability of the data": the coordinator only
        schedules flows that have accumulated data to send (local agents
        piggyback availability onto their periodic flow statistics).
        """
        pending = self.pending_flows(coflow)
        if (not self.respect_availability
                or self.max_available_time(coflow) <= now):
            # Availability-clean: every pending flow has data; skip the
            # per-flow available_time comparisons. Engine-notified pending
            # caches hold no finished flows, so they copy straight through.
            if coflow.coflow_id in self._exact_pending:
                return pending.copy()
            return [f for f in pending if f.finish_time is None]
        return [
            f for f in pending
            if f.finish_time is None and f.available_time <= now
        ]

    def max_available_time(self, coflow: CoFlow) -> float:
        """Latest ``available_time`` across the coflow's flows (static).

        Once ``now`` passes this bound the schedulable set equals the
        pending set, which makes the compaction caches exact.
        """
        bound = self._max_avail.get(coflow.coflow_id)
        if bound is None:
            bound = max((f.available_time for f in coflow.flows), default=0.0)
            self._max_avail[coflow.coflow_id] = bound
        return bound

    def port_counts(self, coflow: CoFlow, now: float) -> dict[int, int] | None:
        """Per-port pending-flow counts, when exact for the schedulable set.

        Returns ``{port: count}`` over the coflow's pending flows — the
        counts :func:`~repro.simulator.ratealloc.equal_rate_for_coflow` and
        all-or-none admission would otherwise rebuild per round — or
        ``None`` when some pending flow is still unavailable at ``now`` (the
        schedulable set is then a strict subset and callers must recount).
        """
        if self.respect_availability and self.max_available_time(coflow) > now:
            return None
        return self.pending_port_counts(coflow)

    def pending_port_counts(self, coflow: CoFlow) -> dict[int, int]:
        """Per-port pending-flow counts, regardless of availability.

        Projection of :meth:`flow_groups` onto ports. Availability never
        moves a flow's ports, so consumers that only need the *footprint*
        of the unfinished flows (contention indexing) can use this without
        the availability gate that :meth:`port_counts` applies.
        """
        counts = self._port_counts.get(coflow.coflow_id)
        if counts is None:
            counts = {}
            get = counts.get
            for (src, dst), bucket in self.flow_groups(coflow).items():
                n = len(bucket)
                counts[src] = get(src, 0) + n
                counts[dst] = get(dst, 0) + n
            self._port_counts[coflow.coflow_id] = counts
        return counts

    def flow_groups(
        self, coflow: CoFlow
    ) -> dict[tuple[int, int], list[Flow]]:
        """Pending flows bucketed by ``(src, dst)`` (flow-group compaction).

        Maintained incrementally by the engine's completion notifications;
        rebuilt lazily after dynamics (which may move flows across ports).
        """
        groups = self._groups.get(coflow.coflow_id)
        if groups is None:
            groups = {}
            for f in self.pending_flows(coflow):
                if f.finish_time is None:
                    groups.setdefault((f.src, f.dst), []).append(f)
            self._groups[coflow.coflow_id] = groups
        return groups

    def pending_flows(self, coflow: CoFlow) -> list[Flow]:
        """Cached list of the coflow's not-yet-finished flows.

        Maintained by the engine's completion notifications; entries are a
        *superset* of the truly unfinished flows (callers still filter on
        ``finish_time``), so a stale cache can only cost time, never
        correctness — hand-built states that bypass the notifications keep
        working.
        """
        cached = self._pending.get(coflow.coflow_id)
        if cached is None:
            cached = [f for f in coflow.flows if f.finish_time is None]
            self._pending[coflow.coflow_id] = cached
        return cached

    def active_flow_count(self) -> int:
        return sum(
            len(c.unfinished_flows()) for c in self.active_coflows
        )

    def coflow(self, coflow_id: int) -> CoFlow:
        """Active coflow by id (maintained by the engine notifications)."""
        try:
            return self._by_id[coflow_id]
        except KeyError:
            for c in self.active_coflows:  # hand-built states
                if c.coflow_id == coflow_id:
                    return c
            raise

    def port_capacity(self, port: int) -> float:
        return self.capacity_override.get(port, self.fabric.capacity(port))

    # ---- engine notifications --------------------------------------------

    def note_activated(self, coflow: CoFlow) -> None:
        """A coflow joined ``active_coflows`` (arrival or DAG release)."""
        self._by_id[coflow.coflow_id] = coflow
        self._pending[coflow.coflow_id] = [
            f for f in coflow.flows if f.finish_time is None
        ]
        self._exact_pending.add(coflow.coflow_id)
        self.delta.arrived.add(coflow.coflow_id)

    def note_flow_finished(self, flow: Flow) -> None:
        """One flow of an active coflow completed."""
        pending = self._pending.get(flow.coflow_id)
        if pending is not None:
            try:
                pending.remove(flow)
            except ValueError:
                pass
        counts = self._port_counts.get(flow.coflow_id)
        if counts is not None:
            for port in (flow.src, flow.dst):
                left = counts.get(port, 0) - 1
                if left > 0:
                    counts[port] = left
                else:
                    counts.pop(port, None)
        groups = self._groups.get(flow.coflow_id)
        if groups is not None:
            bucket = groups.get((flow.src, flow.dst))
            if bucket is not None:
                try:
                    bucket.remove(flow)
                except ValueError:
                    pass
                if not bucket:
                    del groups[(flow.src, flow.dst)]
        self.delta.flow_completed.add(flow.coflow_id)

    def note_coflow_finished(self, coflow_id: int) -> None:
        """A coflow completed entirely and left ``active_coflows``."""
        self._by_id.pop(coflow_id, None)
        self._pending.pop(coflow_id, None)
        self._exact_pending.discard(coflow_id)
        self._port_counts.pop(coflow_id, None)
        self._groups.pop(coflow_id, None)
        self._max_avail.pop(coflow_id, None)
        self.delta.completed.add(coflow_id)
        self.delta.flow_completed.discard(coflow_id)
        self.delta.arrived.discard(coflow_id)
        self.delta.progressed.discard(coflow_id)

    def note_dynamics(self) -> None:
        """A dynamics action mutated state arbitrarily: rebuild everything.

        Dynamics may restart flows (reverting progress), move a flow to a
        new receiver, or change port capacities — none of which the delta
        vocabulary describes, so incremental consumers start over. Pending
        caches stay valid (dynamics never resurrect a *finished* flow), but
        the cached ledger is dropped in case capacities changed, and the
        flow-group compaction caches are dropped in case a restart moved a
        flow to a new receiver port (``available_time`` is static, so the
        availability bounds survive).
        """
        self.delta.mark_full()
        self._cached_ledger = None
        self._cached_override = None
        self._port_counts.clear()
        self._groups.clear()
