"""Cluster state exposed to schedulers, and the flat flow table behind it.

:class:`ClusterState` is the schedulers' *only* window into the simulation:
the set of active (arrived, unfinished) coflows, the fabric geometry, and
per-port capacity overrides from dynamics. Online schedulers must not touch
``Flow.volume`` / ``Flow.remaining`` — the clairvoyant baselines (Varys, SCF,
SRTF, LWTF) are explicitly allowed to, and are marked as offline in their
docstrings.

Incremental scheduling support lives here too:

* :class:`FlowTable` — a struct-of-arrays registry of every *active* flow.
  Each flow is assigned a dense integer row at activation (rows are recycled
  through a free list when a coflow finishes), and the fields the hot loops
  touch (``volume``, ``bytes_sent``, ``rate``, ``finish_time``, ports,
  coflow id, allocation epoch) live in parallel lists indexed by that row.
  The engine, the rate allocators and the scheduler projections all operate
  on rows; :class:`~repro.simulator.flows.Flow` objects are thin views.
* :class:`SchedulingDelta` — the dirty set accumulated by the engine between
  scheduler invocations (arrived / completed / progressed coflows), so
  schedulers can update their bookkeeping from the change instead of
  rescanning the world every round;
* per-coflow *pending row* caches, so per-round flow gathering walks only
  unfinished flows instead of every flow ever submitted;
* a reusable :class:`~repro.simulator.fabric.PortLedger` cleared in
  O(changed ports) per round via :meth:`ClusterState.acquire_ledger`;
* per-coflow *flow-group compaction*: ``(src, dst)``-bucketed pending-row
  groups and per-port pending-flow counts maintained incrementally from the
  engine's completion notifications, so rate allocators and admission checks
  work in O(groups)/O(ports) instead of recounting every flow each round
  (:meth:`ClusterState.port_counts`, :meth:`ClusterState.flow_groups`).

Multi-tier topologies (see :mod:`repro.simulator.topology`) plug in here:
a :class:`ClusterState` built with a topology that has core links runs in
*path-aware* mode — :meth:`ClusterState.make_ledger` returns a
:class:`~repro.simulator.topology.LinkLedger`, and
:meth:`ClusterState.link_counts` projects the flow-group compaction onto
whole link paths for admission and equal-rate assignment. The big-switch
default (``topology=None``) is untouched by construction.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field

from .fabric import Fabric, PortLedger
from .flows import CoFlow, Flow
from .topology import LinkLedger, PathMap, Topology


class FlowTable:
    """Struct-of-arrays storage for the mutable state of active flows.

    Layout: parallel lists indexed by *row*. A flow is **adopted** when its
    coflow activates — it receives the lowest-overhead row available (a
    recycled one from the free list, else a fresh append) — and **evicted**
    when its coflow completes, at which point the row's values are copied
    back into the view object's shadow storage and the row returns to the
    free list. Between those two instants the table is the single source of
    truth: the ``Flow`` view's mutable properties read and write these
    arrays, so object-path and row-path consumers always agree.

    Index-lifetime rules:

    * a live flow's row never changes (heap entries, running sets and
      pending caches can hold raw row indices);
    * ``epoch[row]`` is bumped on eviction, so stale references (e.g.
      completion-heap entries keyed ``(bound, epoch, row)``) can never
      alias the next occupant of a recycled row;
    * ``view[row]`` is ``None`` for free rows — the liveness predicate.

    **Memory layout.** The numeric columns are :class:`array.array` buffers
    — ``'d'`` (C ``double``) for the float columns and ``'q'`` (C
    ``int64``) for the id/index columns — so the compiled kernels in
    :mod:`repro._fastcore` can address them as contiguous C arrays through
    the buffer protocol while the Python rows path indexes them exactly as
    it indexed the former plain lists. ``finish_time`` / ``start_time``
    keep ``None`` sentinels ("not finished/started yet") and therefore
    stay object lists, as does ``view``.
    """

    __slots__ = (
        "flow_id", "coflow_id", "src", "dst", "volume", "bytes_sent",
        "rate", "finish_time", "start_time", "available_time", "pos",
        "epoch", "view", "row_of", "_free", "fastcore",
    )

    def __init__(self) -> None:
        self.flow_id: array = array("q")
        self.coflow_id: array = array("q")
        self.src: array = array("q")
        self.dst: array = array("q")
        self.volume: array = array("d")
        self.bytes_sent: array = array("d")
        self.rate: array = array("d")
        self.finish_time: list[float | None] = []
        self.start_time: list[float | None] = []
        self.available_time: array = array("d")
        #: Position of the flow within its coflow's ``flows`` list (the
        #: legacy same-instant completion tie-break).
        self.pos: array = array("q")
        #: Allocation epoch: bumped whenever the applied rate changes and on
        #: eviction (invalidates completion-heap entries; never reset).
        self.epoch: array = array("q")
        #: The view object occupying each row (None = free row).
        self.view: list[Flow | None] = []
        #: flow_id -> row for every live flow.
        self.row_of: dict[int, int] = {}
        #: Recycled rows, LIFO (hot rows stay cache-warm).
        self._free: list[int] = []
        #: When True (set by the session from ``SimulationConfig.fastcore``
        #: if the compiled extension is importable), row-path consumers
        #: dispatch the hot kernels to :mod:`repro._fastcore`. Hand-built
        #: tables default to the pure-Python path.
        self.fastcore: bool = False

    def __len__(self) -> int:
        """Number of live (adopted, not yet evicted) flows."""
        return len(self.row_of)

    @property
    def capacity(self) -> int:
        """Total rows ever allocated (live + free)."""
        return len(self.flow_id)

    def adopt(self, flow: Flow, pos: int) -> int:
        """Attach ``flow`` to the table; returns its row index.

        Copies the view's current shadow state into the arrays — adoption is
        transparent to any reader of the flow's properties.
        """
        free = self._free
        if free:
            i = free.pop()
            self.flow_id[i] = flow.flow_id
            self.coflow_id[i] = flow.coflow_id
            self.src[i] = flow.src
            self.dst[i] = flow._dst
            self.volume[i] = flow.volume
            self.bytes_sent[i] = flow._bytes_sent
            self.rate[i] = flow._rate
            self.finish_time[i] = flow._finish_time
            self.start_time[i] = flow._start_time
            self.available_time[i] = flow.available_time
            self.pos[i] = pos
            # epoch[i] keeps its post-eviction bump: strictly greater than
            # any value a stale reference to this row can carry.
        else:
            i = len(self.flow_id)
            self.flow_id.append(flow.flow_id)
            self.coflow_id.append(flow.coflow_id)
            self.src.append(flow.src)
            self.dst.append(flow._dst)
            self.volume.append(flow.volume)
            self.bytes_sent.append(flow._bytes_sent)
            self.rate.append(flow._rate)
            self.finish_time.append(flow._finish_time)
            self.start_time.append(flow._start_time)
            self.available_time.append(flow.available_time)
            self.pos.append(pos)
            self.epoch.append(0)
            self.view.append(None)
        self.view[i] = flow
        self.row_of[flow.flow_id] = i
        flow._tbl = self
        flow._row = i
        return i

    def evict(self, row: int) -> None:
        """Detach the flow at ``row``, copying state back into the view."""
        f = self.view[row]
        if f is None:
            return
        f._dst = self.dst[row]
        f._bytes_sent = self.bytes_sent[row]
        f._rate = self.rate[row]
        f._start_time = self.start_time[row]
        f._finish_time = self.finish_time[row]
        f._tbl = None
        f._row = -1
        self.view[row] = None
        del self.row_of[f.flow_id]
        self.epoch[row] += 1  # stale (bound, epoch, row) refs can't alias
        self._free.append(row)

    def adopt_coflow(self, coflow: CoFlow) -> list[int]:
        """Adopt every flow of ``coflow``; rows align with ``flows`` order."""
        if coflow._rows is not None:
            return coflow._rows
        rows = [self.adopt(f, pos) for pos, f in enumerate(coflow.flows)]
        coflow._table = self
        coflow._rows = rows
        return rows

    def evict_coflow(self, coflow: CoFlow) -> None:
        """Evict every flow of ``coflow`` and detach the coflow itself."""
        rows = coflow._rows
        if rows is None or coflow._table is not self:
            return
        for i in rows:
            self.evict(i)
        coflow._table = None
        coflow._rows = None


@dataclass(slots=True)
class SchedulingDelta:
    """What changed since the scheduler last ran (the engine's dirty set).

    ``full`` forces a from-scratch rebuild of any incremental bookkeeping:
    it is set for the very first round and whenever a dynamics action
    mutates state in ways the delta cannot describe (flow restarts, port
    capacity changes, …). The remaining fields are coflow-id sets:

    * ``arrived`` — became active (arrival or DAG release);
    * ``completed`` — finished entirely and left ``active_coflows``;
    * ``flow_completed`` — still active but lost at least one flow, so
      their port footprint may have shrunk;
    * ``progressed`` — had at least one flow moving bytes, so their queue
      metrics (total / max per-flow bytes sent) may have grown.
    """

    full: bool = True
    arrived: set[int] = field(default_factory=set)
    completed: set[int] = field(default_factory=set)
    flow_completed: set[int] = field(default_factory=set)
    progressed: set[int] = field(default_factory=set)

    def clear(self) -> None:
        """Reset after a scheduler consumed the delta."""
        self.full = False
        self.arrived.clear()
        self.completed.clear()
        self.flow_completed.clear()
        self.progressed.clear()

    def mark_full(self) -> None:
        """Request a from-scratch rebuild on the next scheduling round."""
        self.full = True


@dataclass
class ClusterState:
    """Snapshot handed to :meth:`repro.schedulers.base.Scheduler.schedule`."""

    fabric: Fabric
    #: Active coflows in arrival order (arrived, not yet finished, and with
    #: DAG dependencies satisfied).
    active_coflows: list[CoFlow] = field(default_factory=list)
    #: Per-port capacity overrides (bytes/s) from dynamics events; ports not
    #: listed run at ``fabric.port_rate``.
    capacity_override: dict[int, float] = field(default_factory=dict)
    #: When False, ``schedulable_flows`` ignores data availability — an
    #: availability-*oblivious* coordinator that wastes slots on flows with
    #: no data to send (the §4.3 counterfactual; the engine still refuses
    #: to move unavailable bytes).
    respect_availability: bool = True
    #: Changes since the last scheduling round (maintained by the engine).
    delta: SchedulingDelta = field(default_factory=SchedulingDelta)
    #: Struct-of-arrays hot state of every active flow (see module doc).
    table: FlowTable = field(default_factory=FlowTable)
    #: Fabric topology (``None`` = the classic big switch). A topology
    #: with core links switches the state into *path-aware* mode: ledgers
    #: become :class:`~repro.simulator.topology.LinkLedger`\ s and the
    #: schedulers route contention/admission through link paths.
    topology: Topology | None = None
    #: Per-run path assignment (built automatically from ``topology`` when
    #: it has core links; ``None`` on the big-switch default).
    paths: PathMap | None = field(default=None, repr=False)
    #: Optional observability registry (counters/gauges/summaries) shared
    #: with the owning session; ledgers built by this state inherit it so
    #: allocation-primitive calls can be counted. ``None`` = disabled.
    metrics: "object | None" = field(default=None, repr=False)

    # Internal caches; never part of the public snapshot semantics.
    _by_id: dict[int, CoFlow] = field(default_factory=dict, repr=False)
    #: coflow_id -> table rows of not-yet-finished flows (exact: maintained
    #: by live engine notifications, holds no finished flows).
    _pending_rows: dict[int, list[int]] = field(
        default_factory=dict, repr=False
    )
    #: Lazy object-path pending cache for hand-assembled states that bypass
    #: ``note_activated`` (may go stale; callers re-filter on finish_time).
    _pending: dict[int, list[Flow]] = field(default_factory=dict, repr=False)
    _cached_ledger: PortLedger | None = field(default=None, repr=False)
    _cached_override: dict[int, float] | None = field(default=None, repr=False)
    #: coflow_id -> {port: number of pending flows touching it} (compaction).
    _port_counts: dict[int, dict[int, int]] = field(
        default_factory=dict, repr=False
    )
    #: coflow_id -> {(src, dst): [pending rows]} (compaction, row path).
    _group_rows: dict[int, dict[tuple[int, int], list[int]]] = field(
        default_factory=dict, repr=False
    )
    #: coflow_id -> {(src, dst): [pending flows]} (hand-built fallback).
    _groups: dict[int, dict[tuple[int, int], list[Flow]]] = field(
        default_factory=dict, repr=False
    )
    #: coflow_id -> max ``available_time`` over its flows (static bound used
    #: to decide when the compaction caches equal the schedulable set).
    _max_avail: dict[int, float] = field(default_factory=dict, repr=False)
    #: coflow_id -> {link: pending flows crossing it} (path-aware twin of
    #: ``_port_counts``: includes the core links of each flow's path).
    _link_counts: dict[int, dict[int, int]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if (self.paths is None and self.topology is not None
                and self.topology.num_core_links):
            self.paths = PathMap(self.topology)

    # ---- topology ---------------------------------------------------------

    @property
    def path_aware(self) -> bool:
        """True when the topology has core links, i.e. flow paths matter.

        Schedulers must then route admission and rate assignment through
        the path-aware allocator twins; on the big-switch default this is
        False and every classic code path runs unchanged.
        """
        return self.paths is not None

    # ---- ledgers ----------------------------------------------------------

    def make_ledger(self) -> PortLedger:
        """Fresh residual-capacity ledger honouring dynamic overrides.

        A :class:`~repro.simulator.topology.LinkLedger` over every link in
        path-aware mode, the classic :class:`PortLedger` otherwise.
        """
        if self.paths is not None:
            ledger: PortLedger = LinkLedger(
                self.topology, self.paths,
                capacity_override=self.capacity_override,
            )
        else:
            ledger = PortLedger(
                self.fabric, capacity_override=self.capacity_override
            )
        ledger._metrics = self.metrics
        return ledger

    def set_metrics(self, metrics: "object | None") -> None:
        """(Un)attach an observability registry, patching any cached
        ledger so future rounds count through it immediately."""
        self.metrics = metrics
        if self._cached_ledger is not None:
            self._cached_ledger._metrics = metrics

    def acquire_ledger(self) -> PortLedger:
        """A pristine ledger, reusing the previous round's in O(changed ports).

        Equivalent to :meth:`make_ledger` but clears the cached ledger's
        commitments instead of rebuilding the per-port tables. The cache is
        discarded whenever ``capacity_override`` changed since it was built
        (dynamics events), so overrides are always honoured.
        """
        ledger = self._cached_ledger
        if ledger is None or self._cached_override != self.capacity_override:
            ledger = self.make_ledger()
            self._cached_ledger = ledger
            self._cached_override = dict(self.capacity_override)
        else:
            ledger.reset()
        return ledger

    # ---- flow queries -----------------------------------------------------

    def rows_tracked(self) -> bool:
        """True when every active coflow has an exact pending-row cache —
        i.e. the whole round can run on table rows. Engine-driven states
        always qualify; hand-assembled states that bypass
        ``note_activated`` make schedulers fall back to the object path.
        """
        pending = self._pending_rows
        for c in self.active_coflows:
            if c.coflow_id not in pending:
                return False
        return True

    def pending_rows(self, coflow: CoFlow) -> list[int] | None:
        """Table rows of the coflow's pending flows, or ``None`` when the
        coflow is not table-tracked (hand-assembled state).

        The returned list is the live cache — callers must not mutate it.
        """
        return self._pending_rows.get(coflow.coflow_id)

    def schedulable_rows(self, coflow: CoFlow, now: float) -> list[int] | None:
        """Row-path twin of :meth:`schedulable_flows` (same filter, same
        order); ``None`` when the coflow is not table-tracked.

        Availability-clean coflows get the *live* pending-row cache —
        callers must treat the result as read-only and use it within the
        current scheduling round (the cache shrinks on the next completion).
        """
        cid = coflow.coflow_id
        rows = self._pending_rows.get(cid)
        if rows is None:
            return None
        # Inlined max_available_time (this runs once per coflow per round
        # across every scheduler): most workloads have no pipelined data,
        # so the static bound resolves the gate without a per-row pass.
        bound = self._max_avail.get(cid)
        if bound is None:
            bound = max((f.available_time for f in coflow.flows), default=0.0)
            self._max_avail[cid] = bound
        if bound <= now or not self.respect_availability:
            return rows
        avail = self.table.available_time
        return [i for i in rows if avail[i] <= now]

    def schedulable_flows(self, coflow: CoFlow, now: float) -> list[Flow]:
        """Unfinished flows of ``coflow`` whose data is available at ``now``.

        Models §4.3 "un-availability of the data": the coordinator only
        schedules flows that have accumulated data to send (local agents
        piggyback availability onto their periodic flow statistics).
        """
        rows = self._pending_rows.get(coflow.coflow_id)
        if rows is not None:
            view = self.table.view
            if (not self.respect_availability
                    or self.max_available_time(coflow) <= now):
                # Availability-clean: every pending flow has data; the row
                # cache holds no finished flows, so it maps straight through.
                return [view[i] for i in rows]
            avail = self.table.available_time
            return [view[i] for i in rows if avail[i] <= now]
        pending = self.pending_flows(coflow)
        if (not self.respect_availability
                or self.max_available_time(coflow) <= now):
            return [f for f in pending if f.finish_time is None]
        return [
            f for f in pending
            if f.finish_time is None and f.available_time <= now
        ]

    def max_available_time(self, coflow: CoFlow) -> float:
        """Latest ``available_time`` across the coflow's flows (static).

        Once ``now`` passes this bound the schedulable set equals the
        pending set, which makes the compaction caches exact.
        """
        bound = self._max_avail.get(coflow.coflow_id)
        if bound is None:
            bound = max((f.available_time for f in coflow.flows), default=0.0)
            self._max_avail[coflow.coflow_id] = bound
        return bound

    def port_counts(self, coflow: CoFlow, now: float) -> dict[int, int] | None:
        """Per-port pending-flow counts, when exact for the schedulable set.

        Returns ``{port: count}`` over the coflow's pending flows — the
        counts :func:`~repro.simulator.ratealloc.equal_rate_for_coflow` and
        all-or-none admission would otherwise rebuild per round — or
        ``None`` when some pending flow is still unavailable at ``now`` (the
        schedulable set is then a strict subset and callers must recount).
        """
        if self.respect_availability and self.max_available_time(coflow) > now:
            return None
        return self.pending_port_counts(coflow)

    def pending_port_counts(self, coflow: CoFlow) -> dict[int, int]:
        """Per-port pending-flow counts, regardless of availability.

        Projection of the flow-group compaction onto ports. Availability
        never moves a flow's ports, so consumers that only need the
        *footprint* of the unfinished flows (contention indexing) can use
        this without the availability gate that :meth:`port_counts` applies.
        """
        counts = self._port_counts.get(coflow.coflow_id)
        if counts is None:
            counts = {}
            get = counts.get
            buckets = self._buckets(coflow)
            if buckets is not None:
                for (src, dst), rows in buckets.items():
                    n = len(rows)
                    counts[src] = get(src, 0) + n
                    counts[dst] = get(dst, 0) + n
            else:
                for (src, dst), bucket in self.flow_groups(coflow).items():
                    n = len(bucket)
                    counts[src] = get(src, 0) + n
                    counts[dst] = get(dst, 0) + n
            self._port_counts[coflow.coflow_id] = counts
        return counts

    def link_counts(self, coflow: CoFlow, now: float,
                    flows: "list[Flow] | None" = None) -> dict[int, int]:
        """Per-*link* schedulable-flow counts (path-aware compaction).

        The path-aware twin of :meth:`port_counts`: each schedulable flow
        contributes to its sender port, its receiver port and every core
        link on its assigned path. Unlike :meth:`port_counts` this never
        returns ``None`` — when some pending flow is availability-gated at
        ``now`` the counts are computed over the exact schedulable subset
        (uncached; pass ``flows`` to reuse an already-gathered
        ``schedulable_flows(coflow, now)`` list instead of re-deriving
        it); availability-clean coflows use a per-coflow cache maintained
        incrementally from completion notifications. Only valid in
        path-aware mode (``paths`` must be set).
        """
        paths = self.paths
        extra_links = paths.extra_links
        if self.respect_availability and self.max_available_time(coflow) > now:
            counts: dict[int, int] = {}
            get = counts.get
            if flows is None:
                flows = self.schedulable_flows(coflow, now)
            for f in flows:
                src, dst = f.src, f.dst
                counts[src] = get(src, 0) + 1
                counts[dst] = get(dst, 0) + 1
                for link in extra_links(src, dst):
                    counts[link] = get(link, 0) + 1
            return counts
        cached = self._link_counts.get(coflow.coflow_id)
        if cached is None:
            cached = {}
            get = cached.get
            buckets = self._buckets(coflow)
            if buckets is not None:
                groups = {key: len(rows) for key, rows in buckets.items()}
            else:
                groups = {
                    key: len(bucket)
                    for key, bucket in self.flow_groups(coflow).items()
                }
            for (src, dst), n in groups.items():
                cached[src] = get(src, 0) + n
                cached[dst] = get(dst, 0) + n
                for link in extra_links(src, dst):
                    cached[link] = get(link, 0) + n
            self._link_counts[coflow.coflow_id] = cached
        return cached

    def _buckets(
        self, coflow: CoFlow
    ) -> dict[tuple[int, int], list[int]] | None:
        """Pending rows bucketed by ``(src, dst)``, or ``None`` when the
        coflow is not table-tracked. Built lazily; maintained incrementally
        by the engine's completion notifications; dropped after dynamics
        (which may move flows across ports)."""
        cid = coflow.coflow_id
        buckets = self._group_rows.get(cid)
        if buckets is None:
            rows = self._pending_rows.get(cid)
            if rows is None:
                return None
            buckets = {}
            t = self.table
            src, dst = t.src, t.dst
            for i in rows:
                buckets.setdefault((src[i], dst[i]), []).append(i)
            self._group_rows[cid] = buckets
        return buckets

    def flow_groups(
        self, coflow: CoFlow
    ) -> dict[tuple[int, int], list[Flow]]:
        """Pending flows bucketed by ``(src, dst)`` (flow-group compaction).

        Object-path projection of :meth:`_buckets`; table-tracked coflows
        materialise views on each call, so row-path consumers should use
        the bucket sizes via :meth:`pending_port_counts` instead.
        """
        buckets = self._buckets(coflow)
        if buckets is not None:
            view = self.table.view
            return {
                key: [view[i] for i in rows]
                for key, rows in buckets.items()
            }
        groups = self._groups.get(coflow.coflow_id)
        if groups is None:
            groups = {}
            for f in self.pending_flows(coflow):
                if f.finish_time is None:
                    groups.setdefault((f.src, f.dst), []).append(f)
            self._groups[coflow.coflow_id] = groups
        return groups

    def pending_flows(self, coflow: CoFlow) -> list[Flow]:
        """The coflow's not-yet-finished flows.

        Table-tracked coflows map the exact pending-row cache through the
        view column; hand-built states fall back to a lazily-built object
        list whose entries are a *superset* of the truly unfinished flows
        (callers still filter on ``finish_time``), so a stale cache can only
        cost time, never correctness.
        """
        rows = self._pending_rows.get(coflow.coflow_id)
        if rows is not None:
            view = self.table.view
            return [view[i] for i in rows]
        cached = self._pending.get(coflow.coflow_id)
        if cached is None:
            cached = [f for f in coflow.flows if f.finish_time is None]
            self._pending[coflow.coflow_id] = cached
        return cached

    def active_flow_count(self) -> int:
        return sum(
            len(c.unfinished_flows()) for c in self.active_coflows
        )

    def coflow(self, coflow_id: int) -> CoFlow:
        """Active coflow by id (maintained by the engine notifications)."""
        try:
            return self._by_id[coflow_id]
        except KeyError:
            for c in self.active_coflows:  # hand-built states
                if c.coflow_id == coflow_id:
                    return c
            raise

    def port_capacity(self, port: int) -> float:
        return self.capacity_override.get(port, self.fabric.capacity(port))

    # ---- engine notifications --------------------------------------------

    def note_activated(self, coflow: CoFlow) -> None:
        """A coflow joined ``active_coflows`` (arrival or DAG release).

        Adopts the coflow's flows into the flow table and builds the exact
        pending-row cache.
        """
        self._by_id[coflow.coflow_id] = coflow
        rows = self.table.adopt_coflow(coflow)
        ft = self.table.finish_time
        self._pending_rows[coflow.coflow_id] = [
            i for i in rows if ft[i] is None
        ]
        self.delta.arrived.add(coflow.coflow_id)

    def note_flow_finished(self, flow: Flow) -> None:
        """One flow of an active coflow completed."""
        cid = flow.coflow_id
        if flow._tbl is self.table:
            row = flow._row
            rows = self._pending_rows.get(cid)
            if rows is not None:
                try:
                    rows.remove(row)
                except ValueError:
                    pass
            t = self.table
            src, dst = t.src[row], t.dst[row]
            buckets = self._group_rows.get(cid)
            if buckets is not None:
                bucket = buckets.get((src, dst))
                if bucket is not None:
                    try:
                        bucket.remove(row)
                    except ValueError:
                        pass
                    if not bucket:
                        del buckets[(src, dst)]
        else:
            src, dst = flow.src, flow.dst
            pending = self._pending.get(cid)
            if pending is not None:
                try:
                    pending.remove(flow)
                except ValueError:
                    pass
            groups = self._groups.get(cid)
            if groups is not None:
                bucket = groups.get((src, dst))
                if bucket is not None:
                    try:
                        bucket.remove(flow)
                    except ValueError:
                        pass
                    if not bucket:
                        del groups[(src, dst)]
        counts = self._port_counts.get(cid)
        if counts is not None:
            for port in (src, dst):
                left = counts.get(port, 0) - 1
                if left > 0:
                    counts[port] = left
                else:
                    counts.pop(port, None)
        if self.paths is not None:
            lcounts = self._link_counts.get(cid)
            if lcounts is not None:
                for link in (src, dst, *self.paths.extra_links(src, dst)):
                    left = lcounts.get(link, 0) - 1
                    if left > 0:
                        lcounts[link] = left
                    else:
                        lcounts.pop(link, None)
        self.delta.flow_completed.add(cid)

    def note_coflow_finished(self, coflow_id: int) -> None:
        """A coflow completed entirely and left ``active_coflows``.

        Evicts the coflow's rows from the flow table (final values are
        copied back into the view objects, so results and analysis read the
        same state as before) and drops every per-coflow cache.
        """
        coflow = self._by_id.pop(coflow_id, None)
        if coflow is not None:
            self.table.evict_coflow(coflow)
        self._pending_rows.pop(coflow_id, None)
        self._pending.pop(coflow_id, None)
        self._port_counts.pop(coflow_id, None)
        self._link_counts.pop(coflow_id, None)
        self._group_rows.pop(coflow_id, None)
        self._groups.pop(coflow_id, None)
        self._max_avail.pop(coflow_id, None)
        self.delta.completed.add(coflow_id)
        self.delta.flow_completed.discard(coflow_id)
        self.delta.arrived.discard(coflow_id)
        self.delta.progressed.discard(coflow_id)

    def note_dynamics(self) -> None:
        """A dynamics action mutated state arbitrarily: rebuild everything.

        Dynamics may restart flows (reverting progress), move a flow to a
        new receiver, or change port capacities — none of which the delta
        vocabulary describes, so incremental consumers start over. Pending
        caches stay valid (dynamics never resurrect a *finished* flow; a
        restarted flow writes through its view into the same table row),
        but the cached ledger is dropped in case capacities changed, and
        the flow-group compaction caches are dropped in case a restart
        moved a flow to a new receiver port (``available_time`` is static,
        so the availability bounds survive).
        """
        self.delta.mark_full()
        self._cached_ledger = None
        self._cached_override = None
        self._port_counts.clear()
        self._link_counts.clear()
        self._group_rows.clear()
        self._groups.clear()
