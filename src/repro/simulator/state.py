"""Cluster state exposed to schedulers.

:class:`ClusterState` is the schedulers' *only* window into the simulation:
the set of active (arrived, unfinished) coflows, the fabric geometry, and
per-port capacity overrides from dynamics. Online schedulers must not touch
``Flow.volume`` / ``Flow.remaining`` — the clairvoyant baselines (Varys, SCF,
SRTF, LWTF) are explicitly allowed to, and are marked as offline in their
docstrings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .fabric import Fabric, PortLedger
from .flows import CoFlow, Flow


@dataclass
class ClusterState:
    """Snapshot handed to :meth:`repro.schedulers.base.Scheduler.schedule`."""

    fabric: Fabric
    #: Active coflows in arrival order (arrived, not yet finished, and with
    #: DAG dependencies satisfied).
    active_coflows: list[CoFlow] = field(default_factory=list)
    #: Per-port capacity overrides (bytes/s) from dynamics events; ports not
    #: listed run at ``fabric.port_rate``.
    capacity_override: dict[int, float] = field(default_factory=dict)
    #: When False, ``schedulable_flows`` ignores data availability — an
    #: availability-*oblivious* coordinator that wastes slots on flows with
    #: no data to send (the §4.3 counterfactual; the engine still refuses
    #: to move unavailable bytes).
    respect_availability: bool = True

    def make_ledger(self) -> PortLedger:
        """Fresh residual-capacity ledger honouring dynamic overrides."""
        return PortLedger(self.fabric, capacity_override=self.capacity_override)

    def schedulable_flows(self, coflow: CoFlow, now: float) -> list[Flow]:
        """Unfinished flows of ``coflow`` whose data is available at ``now``.

        Models §4.3 "un-availability of the data": the coordinator only
        schedules flows that have accumulated data to send (local agents
        piggyback availability onto their periodic flow statistics).
        """
        if not self.respect_availability:
            return [f for f in coflow.flows if not f.finished]
        return [
            f for f in coflow.flows
            if not f.finished and f.available_time <= now
        ]

    def active_flow_count(self) -> int:
        return sum(
            len(c.unfinished_flows()) for c in self.active_coflows
        )

    def port_capacity(self, port: int) -> float:
        return self.capacity_override.get(port, self.fabric.capacity(port))
