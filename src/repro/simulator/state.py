"""Cluster state exposed to schedulers.

:class:`ClusterState` is the schedulers' *only* window into the simulation:
the set of active (arrived, unfinished) coflows, the fabric geometry, and
per-port capacity overrides from dynamics. Online schedulers must not touch
``Flow.volume`` / ``Flow.remaining`` — the clairvoyant baselines (Varys, SCF,
SRTF, LWTF) are explicitly allowed to, and are marked as offline in their
docstrings.

Incremental scheduling support lives here too:

* :class:`SchedulingDelta` — the dirty set accumulated by the engine between
  scheduler invocations (arrived / completed / progressed coflows), so
  schedulers can update their bookkeeping from the change instead of
  rescanning the world every round;
* per-coflow *pending flow* caches, so per-round flow gathering walks only
  unfinished flows instead of every flow ever submitted;
* a reusable :class:`~repro.simulator.fabric.PortLedger` cleared in
  O(changed ports) per round via :meth:`ClusterState.acquire_ledger`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .fabric import Fabric, PortLedger
from .flows import CoFlow, Flow


@dataclass
class SchedulingDelta:
    """What changed since the scheduler last ran (the engine's dirty set).

    ``full`` forces a from-scratch rebuild of any incremental bookkeeping:
    it is set for the very first round and whenever a dynamics action
    mutates state in ways the delta cannot describe (flow restarts, port
    capacity changes, …). The remaining fields are coflow-id sets:

    * ``arrived`` — became active (arrival or DAG release);
    * ``completed`` — finished entirely and left ``active_coflows``;
    * ``flow_completed`` — still active but lost at least one flow, so
      their port footprint may have shrunk;
    * ``progressed`` — had at least one flow moving bytes, so their queue
      metrics (total / max per-flow bytes sent) may have grown.
    """

    full: bool = True
    arrived: set[int] = field(default_factory=set)
    completed: set[int] = field(default_factory=set)
    flow_completed: set[int] = field(default_factory=set)
    progressed: set[int] = field(default_factory=set)

    def clear(self) -> None:
        """Reset after a scheduler consumed the delta."""
        self.full = False
        self.arrived.clear()
        self.completed.clear()
        self.flow_completed.clear()
        self.progressed.clear()

    def mark_full(self) -> None:
        """Request a from-scratch rebuild on the next scheduling round."""
        self.full = True


@dataclass
class ClusterState:
    """Snapshot handed to :meth:`repro.schedulers.base.Scheduler.schedule`."""

    fabric: Fabric
    #: Active coflows in arrival order (arrived, not yet finished, and with
    #: DAG dependencies satisfied).
    active_coflows: list[CoFlow] = field(default_factory=list)
    #: Per-port capacity overrides (bytes/s) from dynamics events; ports not
    #: listed run at ``fabric.port_rate``.
    capacity_override: dict[int, float] = field(default_factory=dict)
    #: When False, ``schedulable_flows`` ignores data availability — an
    #: availability-*oblivious* coordinator that wastes slots on flows with
    #: no data to send (the §4.3 counterfactual; the engine still refuses
    #: to move unavailable bytes).
    respect_availability: bool = True
    #: Changes since the last scheduling round (maintained by the engine).
    delta: SchedulingDelta = field(default_factory=SchedulingDelta)

    # Internal caches; never part of the public snapshot semantics.
    _by_id: dict[int, CoFlow] = field(default_factory=dict, repr=False)
    _pending: dict[int, list[Flow]] = field(default_factory=dict, repr=False)
    _cached_ledger: PortLedger | None = field(default=None, repr=False)
    _cached_override: dict[int, float] | None = field(default=None, repr=False)

    # ---- ledgers ----------------------------------------------------------

    def make_ledger(self) -> PortLedger:
        """Fresh residual-capacity ledger honouring dynamic overrides."""
        return PortLedger(self.fabric, capacity_override=self.capacity_override)

    def acquire_ledger(self) -> PortLedger:
        """A pristine ledger, reusing the previous round's in O(changed ports).

        Equivalent to :meth:`make_ledger` but clears the cached ledger's
        commitments instead of rebuilding the per-port tables. The cache is
        discarded whenever ``capacity_override`` changed since it was built
        (dynamics events), so overrides are always honoured.
        """
        ledger = self._cached_ledger
        if ledger is None or self._cached_override != self.capacity_override:
            ledger = PortLedger(
                self.fabric, capacity_override=self.capacity_override
            )
            self._cached_ledger = ledger
            self._cached_override = dict(self.capacity_override)
        else:
            ledger.reset()
        return ledger

    # ---- flow queries -----------------------------------------------------

    def schedulable_flows(self, coflow: CoFlow, now: float) -> list[Flow]:
        """Unfinished flows of ``coflow`` whose data is available at ``now``.

        Models §4.3 "un-availability of the data": the coordinator only
        schedules flows that have accumulated data to send (local agents
        piggyback availability onto their periodic flow statistics).
        """
        pending = self.pending_flows(coflow)
        if not self.respect_availability:
            return [f for f in pending if f.finish_time is None]
        return [
            f for f in pending
            if f.finish_time is None and f.available_time <= now
        ]

    def pending_flows(self, coflow: CoFlow) -> list[Flow]:
        """Cached list of the coflow's not-yet-finished flows.

        Maintained by the engine's completion notifications; entries are a
        *superset* of the truly unfinished flows (callers still filter on
        ``finish_time``), so a stale cache can only cost time, never
        correctness — hand-built states that bypass the notifications keep
        working.
        """
        cached = self._pending.get(coflow.coflow_id)
        if cached is None:
            cached = [f for f in coflow.flows if f.finish_time is None]
            self._pending[coflow.coflow_id] = cached
        return cached

    def active_flow_count(self) -> int:
        return sum(
            len(c.unfinished_flows()) for c in self.active_coflows
        )

    def coflow(self, coflow_id: int) -> CoFlow:
        """Active coflow by id (maintained by the engine notifications)."""
        try:
            return self._by_id[coflow_id]
        except KeyError:
            for c in self.active_coflows:  # hand-built states
                if c.coflow_id == coflow_id:
                    return c
            raise

    def port_capacity(self, port: int) -> float:
        return self.capacity_override.get(port, self.fabric.capacity(port))

    # ---- engine notifications --------------------------------------------

    def note_activated(self, coflow: CoFlow) -> None:
        """A coflow joined ``active_coflows`` (arrival or DAG release)."""
        self._by_id[coflow.coflow_id] = coflow
        self._pending[coflow.coflow_id] = [
            f for f in coflow.flows if f.finish_time is None
        ]
        self.delta.arrived.add(coflow.coflow_id)

    def note_flow_finished(self, flow: Flow) -> None:
        """One flow of an active coflow completed."""
        pending = self._pending.get(flow.coflow_id)
        if pending is not None:
            try:
                pending.remove(flow)
            except ValueError:
                pass
        self.delta.flow_completed.add(flow.coflow_id)

    def note_coflow_finished(self, coflow_id: int) -> None:
        """A coflow completed entirely and left ``active_coflows``."""
        self._by_id.pop(coflow_id, None)
        self._pending.pop(coflow_id, None)
        self.delta.completed.add(coflow_id)
        self.delta.flow_completed.discard(coflow_id)
        self.delta.arrived.discard(coflow_id)
        self.delta.progressed.discard(coflow_id)

    def note_dynamics(self) -> None:
        """A dynamics action mutated state arbitrarily: rebuild everything.

        Dynamics may restart flows (reverting progress), move a flow to a
        new receiver, or change port capacities — none of which the delta
        vocabulary describes, so incremental consumers start over. Pending
        caches stay valid (dynamics never resurrect a *finished* flow), but
        the cached ledger is dropped in case capacities changed.
        """
        self.delta.mark_full()
        self._cached_ledger = None
        self._cached_override = None
