"""Cluster dynamics injection: failures, stragglers, skewed computation.

The paper (§4.3) argues Saath's queue machinery should react to cluster
dynamics — node failures restarting flows, stragglers slowing them — and
adds an approximated-SRTF promotion rule. This module provides the *fault
injectors* that create those situations in the simulator; the scheduler-side
reaction lives in :mod:`repro.core.dynamics`.

Each action implements the engine's ``DynamicsAction`` protocol: a ``time``
attribute and an ``apply(sim, now)`` that mutates simulator state. The
engine recomputes the schedule immediately after applying an action.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..errors import ConfigError


def _find_flow(sim, flow_id: int):
    """Active flow by id, in O(1) via the flow table's row index.

    Every active coflow's flows are adopted into the cluster state's
    :class:`~repro.simulator.state.FlowTable` at activation and evicted
    when the coflow finishes, so ``row_of`` covers exactly the flows the
    old linear scan over ``active_coflows`` visited. Hand-assembled states
    that bypass adoption fall back to that scan.
    """
    table = sim.state.table
    row = table.row_of.get(flow_id)
    if row is not None:
        return table.view[row]
    for coflow in sim.state.active_coflows:
        for f in coflow.flows:
            if f.flow_id == flow_id:
                return f
    return None


@dataclass
class FlowRestart:
    """A task restart after a node failure: the flow loses its progress.

    Models the §4.3 failure case — the flow's destination task is re-run
    elsewhere-or-in-place and the data must be resent. ``dst_machine``
    optionally moves the flow to a new receiver (task re-placement).
    """

    time: float
    flow_id: int
    new_dst_port: int | None = None

    def apply(self, sim, now: float) -> None:
        flow = _find_flow(sim, self.flow_id)
        if flow is None or flow.finished:
            return  # the flow beat the failure; nothing to restart
        flow.bytes_sent = 0.0
        flow.rate = 0.0
        flow.start_time = None
        if self.new_dst_port is not None:
            flow.dst = self.new_dst_port


@dataclass
class FlowSlowdown:
    """A straggler: the flow achieves only ``efficiency`` of its allocation.

    The port capacity it *occupies* is unchanged (the allocation is what the
    scheduler granted); the achieved throughput is scaled, exactly like a
    slow disk or CPU-bound sender in a real cluster.
    """

    time: float
    flow_id: int
    efficiency: float

    def __post_init__(self) -> None:
        if not 0 <= self.efficiency <= 1:
            raise ConfigError(
                f"efficiency must be in [0, 1], got {self.efficiency}"
            )

    def apply(self, sim, now: float) -> None:
        sim.flow_efficiency[self.flow_id] = self.efficiency
        flow = _find_flow(sim, self.flow_id)
        if flow is not None and not flow.finished:
            flow.rate *= self.efficiency


@dataclass
class StragglerEvent:
    """A straggling *worker machine*: every flow it sends runs slow.

    The machine-level generalisation of :class:`FlowSlowdown`, built for
    collective/training workloads (see
    :mod:`repro.workloads.collectives`) where "worker 3 is slow" means all
    of worker 3's ring chunks, tree contributions and PS pushes — across
    every stage and iteration — achieve only ``efficiency`` of their
    allocated rate. Applies to the machine's currently-active flows *and*
    to every flow it sends for the rest of the episode (the session tags
    newly arriving flows at activation).

    ``efficiency=1.0`` ends the episode: the machine's registration and its
    active flows' slowdowns are cleared, restoring full speed from the next
    allocation round.

    ``worker`` is a machine id; an unknown id raises
    :class:`~repro.errors.ConfigError` naming it.
    """

    time: float
    worker: int
    efficiency: float

    def __post_init__(self) -> None:
        if not 0 < self.efficiency <= 1:
            raise ConfigError(
                f"efficiency must be in (0, 1], got {self.efficiency}"
            )

    def apply(self, sim, now: float) -> None:
        port = sim.fabric.sender_port(self.worker)  # validates the id
        recovered = self.efficiency >= 1.0
        if recovered:
            sim.machine_efficiency.pop(port, None)
        else:
            sim.machine_efficiency[port] = self.efficiency
        for coflow in sim.state.active_coflows:
            for f in coflow.flows:
                if f.src != port or f.finished:
                    continue
                if recovered:
                    sim.flow_efficiency.pop(f.flow_id, None)
                else:
                    sim.flow_efficiency[f.flow_id] = self.efficiency
                    f.rate *= self.efficiency


@dataclass
class StragglerRecovery:
    """End of a straggler episode: the flow runs at full efficiency again."""

    time: float
    flow_id: int

    def apply(self, sim, now: float) -> None:
        sim.flow_efficiency.pop(self.flow_id, None)


@dataclass
class PortDegradation:
    """Persistent capacity loss at a port (congested/failing link).

    ``factor`` scales the port's capacity: 0.5 halves it, 0 kills the link
    (flows through it stall until :class:`PortRecovery`).
    """

    time: float
    port: int
    factor: float

    def __post_init__(self) -> None:
        if not 0 <= self.factor <= 1:
            raise ConfigError(f"factor must be in [0, 1], got {self.factor}")

    def apply(self, sim, now: float) -> None:
        base = sim.fabric.capacity(self.port)
        sim.state.capacity_override[self.port] = base * self.factor


@dataclass
class PortRecovery:
    """Restore a degraded port to full capacity."""

    time: float
    port: int

    def apply(self, sim, now: float) -> None:
        sim.state.capacity_override.pop(self.port, None)


def _link_base_capacity(sim, link: int) -> float:
    """Nominal capacity of ``link``, resolved through the topology layer.

    On a multi-tier topology any link id — host port or core link — is
    valid; on the big-switch default only host ports exist. Either lookup
    raises :class:`~repro.errors.ConfigError` naming the offending link id
    when it is out of range.
    """
    topology = getattr(sim.state, "topology", None)
    if topology is not None:
        return topology.link_capacity(link)
    return sim.fabric.capacity(link)


@dataclass
class LinkDegradation:
    """Persistent capacity loss at *any* link of the topology.

    The multi-tier generalisation of :class:`PortDegradation`: ``link``
    may name a host port or a core link (a leaf uplink or spine downlink
    of a :class:`~repro.simulator.topology.LeafSpineTopology`). ``factor``
    scales the link's nominal capacity — 0.5 models a congested or
    flapping link, 0 takes it down entirely (flows whose path crosses it
    stall until :class:`LinkRecovery`, unless the path selector routed
    them elsewhere). Applying a core-link degradation on a big-switch
    simulation raises :class:`~repro.errors.ConfigError` naming the link.
    """

    time: float
    link: int
    factor: float

    def __post_init__(self) -> None:
        if not 0 <= self.factor <= 1:
            raise ConfigError(f"factor must be in [0, 1], got {self.factor}")

    def apply(self, sim, now: float) -> None:
        base = _link_base_capacity(sim, self.link)
        sim.state.capacity_override[self.link] = base * self.factor


@dataclass
class LinkRecovery:
    """Restore a degraded link (host port or core link) to full capacity."""

    time: float
    link: int

    def apply(self, sim, now: float) -> None:
        # Validate the id through the topology layer even though the pop
        # itself would tolerate junk: a typo'd recovery should fail loudly,
        # not silently recover nothing.
        _link_base_capacity(sim, self.link)
        sim.state.capacity_override.pop(self.link, None)


#: Dynamics action classes by name — the vocabulary of
#: :func:`encode_actions` / :func:`decode_actions`.
ACTION_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (FlowRestart, FlowSlowdown, StragglerEvent,
                StragglerRecovery,
                PortDegradation, PortRecovery,
                LinkDegradation, LinkRecovery)
}


def encode_actions(actions) -> tuple:
    """Canonical, hashable, JSON-able form of a dynamics action list.

    Each action becomes ``(kind, ((field, value), ...))`` with fields in
    dataclass order. The encoding is the *content identity* of a dynamics
    injection: the sweep runner hashes it into per-run cache keys (so a
    cached result can never be reused across different injections) and
    ships it to worker processes, which rebuild the live actions with
    :func:`decode_actions`.
    """
    encoded = []
    for a in actions:
        kind = type(a).__name__
        if kind not in ACTION_TYPES:
            raise ConfigError(
                f"cannot encode dynamics action {a!r}: {kind} is not a "
                f"registered action type ({sorted(ACTION_TYPES)})"
            )
        encoded.append(
            (kind, tuple((f.name, getattr(a, f.name)) for f in fields(a)))
        )
    return tuple(encoded)


def decode_actions(encoded) -> list:
    """Rebuild live dynamics actions from :func:`encode_actions` output."""
    actions = []
    for kind, kv in encoded:
        try:
            cls = ACTION_TYPES[kind]
        except KeyError:
            raise ConfigError(
                f"unknown dynamics action kind {kind!r}; "
                f"known: {sorted(ACTION_TYPES)}"
            ) from None
        actions.append(cls(**dict(kv)))
    return actions


def inject_stragglers(
    coflows,
    rng,
    *,
    fraction: float = 0.05,
    efficiency: float = 0.3,
    onset: float = 0.0,
) -> list[FlowSlowdown]:
    """Sample straggling flows uniformly across a workload.

    ``fraction`` of all flows become stragglers running at ``efficiency``;
    onset is the straggler start time (absolute). Returns actions to pass to
    the engine's ``dynamics=...``.
    """
    if not 0 <= fraction <= 1:
        raise ConfigError(f"fraction must be in [0, 1], got {fraction}")
    all_flows = [f for c in coflows for f in c.flows]
    count = int(round(len(all_flows) * fraction))
    if count == 0:
        return []
    chosen = rng.choice(len(all_flows), size=count, replace=False)
    return [
        FlowSlowdown(time=max(onset, all_flows[i].available_time),
                     flow_id=all_flows[i].flow_id, efficiency=efficiency)
        for i in sorted(int(i) for i in chosen)
    ]


def inject_failures(
    coflows,
    rng,
    *,
    fraction: float = 0.02,
    delay_range: tuple[float, float] = (0.1, 1.0),
) -> list[FlowRestart]:
    """Sample flow restarts: each chosen flow fails ``delay`` seconds after
    its coflow arrives, losing all progress."""
    if not 0 <= fraction <= 1:
        raise ConfigError(f"fraction must be in [0, 1], got {fraction}")
    pairs = [(c, f) for c in coflows for f in c.flows]
    count = int(round(len(pairs) * fraction))
    if count == 0:
        return []
    chosen = rng.choice(len(pairs), size=count, replace=False)
    actions = []
    for i in sorted(int(i) for i in chosen):
        coflow, flow = pairs[i]
        delay = rng.uniform(*delay_range)
        actions.append(
            FlowRestart(time=coflow.arrival_time + delay, flow_id=flow.flow_id)
        )
    return actions
