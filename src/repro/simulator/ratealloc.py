"""Rate-allocation substrate: water-filling max-min fairness and MADD.

Three allocators used across the schedulers:

* :func:`max_min_fair` — global per-flow max-min fairness via progressive
  filling. This is the fluid model of per-flow TCP fair sharing and powers
  the UC-TCP baseline (§6.1) and intra-queue fair sharing.
* :func:`madd_rates` — Minimum-Allocation-for-Desired-Duration (Varys §4 /
  paper §4.2 D2): give every flow of a coflow the rate that finishes it
  exactly at the coflow's bottleneck completion time.
* :func:`equal_rate_for_coflow` — Saath's D2 rule: one equal rate for all
  flows of a coflow, the minimum of the per-flow fair caps.

All functions operate on a :class:`~repro.simulator.fabric.PortLedger` so
the caller controls what capacity is visible (residual capacity after
higher-priority allocations).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable, Sequence

from .fabric import PortLedger
from .flows import CoFlow, Flow


def max_min_fair(
    flows: Sequence[Flow],
    ledger: PortLedger,
    *,
    rate_cap: float | None = None,
    commit: bool = True,
) -> dict[int, float]:
    """Max-min fair rates for ``flows`` over the ledger's residual capacity.

    Progressive filling: repeatedly find the tightest port (smallest residual
    divided by its number of unfrozen flows), freeze those flows at the fair
    share, subtract, and continue. Runs in ``O(P * F)`` in the worst case,
    which is fine at trace scale.

    Returns a mapping ``flow_id -> rate``; rates of all flows are committed
    to the ledger. ``rate_cap`` optionally bounds every flow's rate (used to
    model per-flow demand limits). ``commit=False`` skips the final ledger
    commits — for callers that discard the ledger after the round (UC-TCP),
    where the per-flow bookkeeping is pure overhead; the rates themselves
    respect every port capacity either way.
    """
    active: dict[int, Flow] = {f.flow_id: f for f in flows if not f.finished}
    rates: dict[int, float] = {fid: 0.0 for fid in active}
    if not active:
        return rates

    residual: dict[int, float] = {}
    port_flows: dict[int, set[int]] = defaultdict(set)
    #: port -> number of not-yet-frozen flows, kept incrementally so each
    #: filling iteration scans ports in O(ports) instead of rebuilding the
    #: per-port live-flow lists (the former quadratic hot spot).
    live_count: dict[int, int] = {}
    for f in active.values():
        for port in (f.src, f.dst):
            if port not in residual:
                residual[port] = ledger.residual(port)
                live_count[port] = 0
            port_flows[port].add(f.flow_id)
            live_count[port] += 1

    frozen: set[int] = set()
    # Flows capped below the fair share freeze at the cap first.
    if rate_cap is not None and rate_cap <= 0:
        return rates

    while len(frozen) < len(active):
        # Tightest port among those with unfrozen flows.
        best_port = None
        best_share = math.inf
        for port, count in live_count.items():
            if count == 0:
                continue
            share = residual[port] / count
            if share < best_share:
                best_share = share
                best_port = port
        if best_port is None:
            break

        if rate_cap is not None and rate_cap < best_share:
            # Every remaining flow can take the cap without saturating any
            # port: freeze them all at the cap.
            for fid in [f for f in active if f not in frozen]:
                rates[fid] = rate_cap
                flow = active[fid]
                residual[flow.src] -= rate_cap
                residual[flow.dst] -= rate_cap
                live_count[flow.src] -= 1
                live_count[flow.dst] -= 1
                frozen.add(fid)
            break

        # Freeze the flows on the bottleneck port at the fair share.
        newly = [fid for fid in port_flows[best_port] if fid not in frozen]
        drained: set[int] = {best_port}
        for fid in newly:
            rates[fid] = best_share
            flow = active[fid]
            residual[flow.src] -= best_share
            residual[flow.dst] -= best_share
            live_count[flow.src] -= 1
            live_count[flow.dst] -= 1
            drained.add(flow.src)
            drained.add(flow.dst)
            frozen.add(fid)
        # Drop ports with no unfrozen flows left from the scan set; the
        # insertion order of the survivors — the tie-break — is unaffected.
        for port in drained:
            if live_count.get(port) == 0:
                del live_count[port]
        # Numerical guard: residuals can dip a hair below zero.
        for port in residual:
            if residual[port] < 0:
                residual[port] = 0.0

    if commit:
        for fid, rate in rates.items():
            if rate > 0:
                flow = active[fid]
                ledger.commit(flow.src, flow.dst, rate)
    return rates


def madd_rates(
    coflow: CoFlow,
    ledger: PortLedger,
    *,
    flows: Iterable[Flow] | None = None,
) -> dict[int, float]:
    """MADD rates finishing all flows of ``coflow`` at its bottleneck time.

    **Clairvoyant**: reads flow remaining volumes. Computes the coflow's
    completion time Γ if each port dedicated its residual capacity, then
    assigns each flow ``remaining / Γ``, scaling down if any port would be
    oversubscribed. Returns ``{}`` when the coflow cannot make progress
    (some needed port has zero residual).

    Rates are committed to the ledger.
    """
    todo = [f for f in (flows if flows is not None else coflow.flows)
            if not f.finished and f.remaining > 0]
    if not todo:
        return {}

    port_bytes: dict[int, float] = defaultdict(float)
    for f in todo:
        port_bytes[f.src] += f.remaining
        port_bytes[f.dst] += f.remaining

    gamma = 0.0
    for port, volume in port_bytes.items():
        residual = ledger.residual(port)
        if residual <= 0:
            return {}
        gamma = max(gamma, volume / residual)
    if gamma <= 0:
        return {}

    rates = {f.flow_id: f.remaining / gamma for f in todo}
    for f in todo:
        ledger.commit(f.src, f.dst, rates[f.flow_id])
    return rates


def equal_rate_for_coflow(
    coflow: CoFlow,
    ledger: PortLedger,
    *,
    flows: Sequence[Flow] | None = None,
) -> dict[int, float]:
    """Saath's D2 rule: one equal rate for every flow of the coflow.

    Non-clairvoyant. At each port the coflow's flows share the residual
    capacity fairly, so flow ``f``'s cap is
    ``min(residual(src)/n_src, residual(dst)/n_dst)`` where ``n_src`` is the
    number of the coflow's schedulable flows on that sender (resp.
    receiver). The coflow rate is the minimum cap over its flows — "the rate
    of the slowest flow is assigned to all the flows" (§4.2 D2) — and is
    committed to the ledger.

    Returns ``{}`` if the equal rate would be zero.
    """
    todo = [f for f in (flows if flows is not None else coflow.flows)
            if f.finish_time is None]
    if not todo:
        return {}

    count_at_port: dict[int, int] = defaultdict(int)
    for f in todo:
        count_at_port[f.src] += 1
        count_at_port[f.dst] += 1

    residual = ledger.residual
    rate = math.inf
    for f in todo:
        cap_src = residual(f.src) / count_at_port[f.src]
        cap_dst = residual(f.dst) / count_at_port[f.dst]
        rate = min(rate, cap_src, cap_dst)
    if not math.isfinite(rate) or rate <= 0:
        return {}

    rates = {f.flow_id: rate for f in todo}
    commit = ledger.commit
    for f in todo:
        commit(f.src, f.dst, rate)
    return rates


def greedy_residual_rates(
    flows: Sequence[Flow],
    ledger: PortLedger,
) -> dict[int, float]:
    """Work-conservation fill (Fig. 7 lines 18–23).

    Walk ``flows`` in order, giving each flow
    ``min(sender residual, receiver residual)`` and committing it. Later
    flows see capacity already consumed by earlier ones, so the input order
    is the scheduling priority order.
    """
    rates: dict[int, float] = {}
    fill = ledger.fill
    for f in flows:
        if f.finish_time is not None:
            continue
        rate = fill(f.src, f.dst)
        if rate > 0:
            rates[f.flow_id] = rate
    return rates
