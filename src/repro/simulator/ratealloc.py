"""Rate-allocation substrate: water-filling max-min fairness and MADD.

Three allocators used across the schedulers:

* :func:`max_min_fair` — global per-flow max-min fairness via progressive
  filling. This is the fluid model of per-flow TCP fair sharing and powers
  the UC-TCP baseline (§6.1) and intra-queue fair sharing.
* :func:`madd_rates` — Minimum-Allocation-for-Desired-Duration (Varys §4 /
  paper §4.2 D2): give every flow of a coflow the rate that finishes it
  exactly at the coflow's bottleneck completion time.
* :func:`equal_rate_for_coflow` — Saath's D2 rule: one equal rate for all
  flows of a coflow, the minimum of the per-flow fair caps.

All functions operate on a :class:`~repro.simulator.fabric.PortLedger` so
the caller controls what capacity is visible (residual capacity after
higher-priority allocations).

Each allocator exists in two forms performing the *same arithmetic in the
same order* (bit-identical outputs, asserted by the equivalence tests):

* the object form (``flows``: a sequence of :class:`Flow`), used by tests
  and hand-assembled states; and
* a ``*_rows`` form taking table row indices plus the owning
  :class:`~repro.simulator.state.FlowTable`, used by the schedulers on
  engine-driven states — per-flow state is read by integer-indexing the
  table columns and the ledger's dense per-port lists, with no attribute
  or dict dispatch in the fill loops.

Multi-tier topologies add a third form: ``*_paths`` twins
(:func:`max_min_fair_paths`, :func:`madd_rates_paths`,
:func:`equal_rate_for_coflow_paths`) that treat every flow as a *path* of
links — sender port, receiver port, plus the core links a
:class:`~repro.simulator.topology.PathMap` assigns to the pair — so the
computed rates saturate at the true bottleneck link. On a big-switch
topology every path is just ``(src, dst)`` and the path twins are
bit-identical to the port-only forms (asserted by the fuzz suite).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import TYPE_CHECKING, Iterable, Sequence

from .._fastcore import core as _core
from .fabric import _CAPACITY_TOLERANCE, CapacityViolationError, PortLedger
from .flows import CoFlow, Flow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (state -> fabric)
    from .state import FlowTable
    from .topology import PathMap


def max_min_fair(
    flows: Sequence[Flow],
    ledger: PortLedger,
    *,
    rate_cap: float | None = None,
    commit: bool = True,
) -> dict[int, float]:
    """Max-min fair rates for ``flows`` over the ledger's residual capacity.

    Progressive filling: repeatedly find the tightest port (smallest residual
    divided by its number of unfrozen flows), freeze those flows at the fair
    share, subtract, and continue. The filling loop runs over a dense port
    index in *first-seen* order — the order the original implementation
    inserted ports into its scan dict — so the tie-break (first port in
    insertion order among equal shares) and every residual
    division/subtraction are unchanged; list indexing just replaces the
    dict churn that used to dominate UC-TCP rounds.

    Returns a mapping ``flow_id -> rate``; rates of all flows are committed
    to the ledger. ``rate_cap`` optionally bounds every flow's rate (used to
    model per-flow demand limits). ``commit=False`` skips the final ledger
    commits — for callers that discard the ledger after the round (UC-TCP),
    where the per-flow bookkeeping is pure overhead; the rates themselves
    respect every port capacity either way.
    """
    active_map: dict[int, Flow] = {
        f.flow_id: f for f in flows if f.finish_time is None
    }
    if not active_map:
        return {}
    active = list(active_map.values())
    fids = list(active_map)
    if rate_cap is not None and rate_cap <= 0:
        return dict.fromkeys(fids, 0.0)

    # Dense port indexing in first-seen order (src before dst per flow).
    port_index: dict[int, int] = {}
    residual: list[float] = []
    live: list[int] = []
    #: dense port -> flow positions touching it, in flow order.
    members: list[list[int]] = []
    num_flows = len(active)
    src_i: list[int] = [0] * num_flows
    dst_i: list[int] = [0] * num_flows
    ledger_residual = ledger.residual
    for i, f in enumerate(active):
        port = f.src
        j = port_index.get(port)
        if j is None:
            j = port_index[port] = len(residual)
            residual.append(ledger_residual(port))
            live.append(1)
            members.append([i])
        else:
            live[j] += 1
            members[j].append(i)
        src_i[i] = j
        port = f.dst
        j = port_index.get(port)
        if j is None:
            j = port_index[port] = len(residual)
            residual.append(ledger_residual(port))
            live.append(1)
            members.append([i])
        else:
            live[j] += 1
            members[j].append(i)
        dst_i[i] = j

    frozen = bytearray(num_flows)
    rate_of: list[float] = [0.0] * num_flows
    num_ports = len(residual)
    remaining = num_flows

    while remaining:
        # Tightest port among those with unfrozen flows. Dense indices were
        # assigned in first-seen order, so ascending-index iteration *is*
        # the original insertion-order scan and the tie-break (first port
        # among equal shares) is preserved; dead ports just skip.
        best_j = -1
        best_share = math.inf
        for j in range(num_ports):
            count = live[j]
            if count == 0:
                continue
            share = residual[j] / count
            if share < best_share:
                best_share = share
                best_j = j
        if best_j < 0:
            break

        if rate_cap is not None and rate_cap < best_share:
            # Every remaining flow can take the cap without saturating any
            # port: freeze them all at the cap. (The original loop also
            # updated residuals here, but nothing reads them after this
            # terminal branch.)
            for i in range(num_flows):
                if not frozen[i]:
                    rate_of[i] = rate_cap
            break

        # Freeze the flows on the bottleneck port at the fair share.
        # Numerical guard, applied per update: residuals can dip a hair
        # below zero. Clamping after each subtraction instead of once at
        # iteration end yields the same final value — a positive partial
        # result is unclamped either way, and once any partial result goes
        # negative both variants end the iteration at exactly 0.0.
        for i in members[best_j]:
            if frozen[i]:
                continue
            frozen[i] = 1
            rate_of[i] = best_share
            j = src_i[i]
            nr = residual[j] - best_share
            residual[j] = nr if nr >= 0 else 0.0
            live[j] -= 1
            j = dst_i[i]
            nr = residual[j] - best_share
            residual[j] = nr if nr >= 0 else 0.0
            live[j] -= 1
            remaining -= 1

    rates = dict(zip(fids, rate_of))
    if commit:
        ledger_commit = ledger.commit
        for f, rate in zip(active, rate_of):
            if rate > 0:
                ledger_commit(f.src, f.dst, rate)
    return rates


def max_min_fair_rows_raw(
    rows: Sequence[int],
    table: "FlowTable",
    ledger: PortLedger,
    *,
    rate_cap: float | None = None,
    commit: bool = True,
    prefiltered: bool = False,
) -> tuple[list[int], list[float]]:
    """Row-path core of :func:`max_min_fair` (same fills, same tie-breaks).

    ``rows`` are flow-table row indices; per-flow ports and liveness come
    from the table columns and the initial per-port residuals from the
    ledger's dense capacity/usage lists, so the build pass does no
    attribute dispatch. Returns the unfinished rows (in input order) and
    their rates as two aligned lists — callers that need a ``flow_id``
    -keyed map use :func:`max_min_fair_rows`; UC-TCP consumes the raw pair
    directly, skipping two O(flows) dict passes per round.

    ``prefiltered=True`` asserts that ``rows`` holds no finished flows
    (true for pending-row caches, which drop rows on completion), skipping
    the liveness re-filter. ``rate_cap <= 0`` zeroes every rate, as in the
    object form.
    """
    if prefiltered:
        active = list(rows) if not isinstance(rows, list) else rows
    else:
        ft = table.finish_time
        active = [i for i in rows if ft[i] is None]
    num_flows = len(active)
    rate_of: list[float] = [0.0] * num_flows
    if not num_flows or (rate_cap is not None and rate_cap <= 0):
        return active, rate_of

    # Compiled twin: the exact-type check keeps LinkLedger subclasses
    # (path-charging commits) on the Python path, whose virtual dispatch
    # the C kernel deliberately does not replicate.
    metrics = ledger._metrics
    if table.fastcore and _core is not None and type(ledger) is PortLedger:
        if metrics is not None:
            metrics.inc("kernel.mmf_fill.fastcore")
        return active, _core.mmf_fill(
            active, table.src, table.dst, ledger.capacity_list,
            ledger.used_list, ledger.touched_set, rate_cap, commit,
        )
    if metrics is not None:
        metrics.inc("kernel.mmf_fill.python")

    src_col = table.src
    dst_col = table.dst
    lcap = ledger.capacity_list
    lused = ledger.used_list

    # Dense port indexing in first-seen order (src before dst per flow).
    # Port ids are already dense fabric indices, so the first-seen map is a
    # flat position list instead of a dict (same assignment order).
    port_pos: list[int] = [-1] * len(lcap)
    residual: list[float] = []
    live: list[int] = []
    #: dense port -> flow positions touching it, in flow order.
    members: list[list[int]] = []
    src_i: list[int] = [0] * num_flows
    dst_i: list[int] = [0] * num_flows
    for k, i in enumerate(active):
        port = src_col[i]
        j = port_pos[port]
        if j < 0:
            port_pos[port] = j = len(residual)
            r = lcap[port] - lused[port]  # == ledger.residual(port)
            residual.append(r if r >= 0.0 else 0.0)
            live.append(1)
            members.append([k])
        else:
            live[j] += 1
            members[j].append(k)
        src_i[k] = j
        port = dst_col[i]
        j = port_pos[port]
        if j < 0:
            port_pos[port] = j = len(residual)
            r = lcap[port] - lused[port]
            residual.append(r if r >= 0.0 else 0.0)
            live.append(1)
            members.append([k])
        else:
            live[j] += 1
            members[j].append(k)
        dst_i[k] = j

    frozen = bytearray(num_flows)
    remaining = num_flows
    inf = math.inf
    #: Per-port fair share ``residual / live`` (inf once drained),
    #: maintained incrementally: a share only changes when one of its
    #: port's inputs changes, so the bottleneck search collapses to a
    #: C-level ``min`` + first-index lookup. ``index(min)`` returns the
    #: lowest dense index achieving the minimum — dense indices were
    #: assigned in first-seen order, so this is exactly the object form's
    #: ascending-scan tie-break (first port among equal shares).
    shares = [residual[j] / live[j] for j in range(len(residual))]

    while remaining:
        best_share = min(shares)
        if best_share == inf:
            break
        best_j = shares.index(best_share)

        if rate_cap is not None and rate_cap < best_share:
            for k in range(num_flows):
                if not frozen[k]:
                    rate_of[k] = rate_cap
            break

        for k in members[best_j]:
            if frozen[k]:
                continue
            frozen[k] = 1
            rate_of[k] = best_share
            j = src_i[k]
            nr = residual[j] - best_share
            residual[j] = nr = nr if nr >= 0 else 0.0
            lv = live[j] - 1
            live[j] = lv
            shares[j] = nr / lv if lv else inf
            j = dst_i[k]
            nr = residual[j] - best_share
            residual[j] = nr = nr if nr >= 0 else 0.0
            lv = live[j] - 1
            live[j] = lv
            shares[j] = nr / lv if lv else inf
            remaining -= 1

    if commit:
        ledger_commit = ledger.commit
        for k, i in enumerate(active):
            rate = rate_of[k]
            if rate > 0:
                ledger_commit(src_col[i], dst_col[i], rate)
    return active, rate_of


def max_min_fair_rows(
    rows: Sequence[int],
    table: "FlowTable",
    ledger: PortLedger,
    *,
    rate_cap: float | None = None,
    commit: bool = True,
) -> dict[int, float]:
    """Row-path twin of :func:`max_min_fair`: ``flow_id → rate`` over the
    unfinished rows (zero-rate entries included, as in the object form)."""
    active, rate_of = max_min_fair_rows_raw(
        rows, table, ledger, rate_cap=rate_cap, commit=commit
    )
    fid = table.flow_id
    return dict(zip([fid[i] for i in active], rate_of))


def madd_rates(
    coflow: CoFlow,
    ledger: PortLedger,
    *,
    flows: Iterable[Flow] | None = None,
) -> dict[int, float]:
    """MADD rates finishing all flows of ``coflow`` at its bottleneck time.

    **Clairvoyant**: reads flow remaining volumes. Computes the coflow's
    completion time Γ if each port dedicated its residual capacity, then
    assigns each flow ``remaining / Γ``, scaling down if any port would be
    oversubscribed. Returns ``{}`` when the coflow cannot make progress
    (some needed port has zero residual).

    Rates are committed to the ledger.
    """
    # Inlined Flow.remaining / Flow.finished: this runs for every active
    # coflow on every scheduling round under Varys, so property dispatch
    # overhead is material. ``remaining > 0`` never needs the max-with-zero
    # clamp the property applies (the filter already excludes non-positive
    # values), so the floats are unchanged.
    todo = [f for f in (flows if flows is not None else coflow.flows)
            if f.finish_time is None and f.volume - f.bytes_sent > 0]
    if not todo:
        return {}

    port_bytes: dict[int, float] = {}
    get = port_bytes.get
    for f in todo:
        remaining = f.volume - f.bytes_sent
        port_bytes[f.src] = get(f.src, 0.0) + remaining
        port_bytes[f.dst] = get(f.dst, 0.0) + remaining

    gamma = 0.0
    port_residual = ledger.residual
    for port, volume in port_bytes.items():
        residual = port_residual(port)
        if residual <= 0:
            return {}
        share = volume / residual
        if share > gamma:
            gamma = share
    if gamma <= 0:
        return {}

    rates = {f.flow_id: (f.volume - f.bytes_sent) / gamma for f in todo}
    commit = ledger.commit
    for f in todo:
        commit(f.src, f.dst, rates[f.flow_id])
    return rates


def madd_rates_rows(
    rows: Sequence[int],
    table: "FlowTable",
    ledger: PortLedger,
) -> dict[int, float]:
    """Row-path twin of :func:`madd_rates` (same Γ, same scaling).

    ``rows`` are the coflow's schedulable rows; remaining volumes are read
    straight off the table columns.
    """
    metrics = ledger._metrics
    if table.fastcore and _core is not None and type(ledger) is PortLedger:
        if metrics is not None:
            metrics.inc("kernel.madd_rows.fastcore")
        return _core.madd_rows(
            rows, table.finish_time, table.volume, table.bytes_sent,
            table.src, table.dst, table.flow_id, ledger.capacity_list,
            ledger.used_list, ledger.touched_set,
        )
    if metrics is not None:
        metrics.inc("kernel.madd_rows.python")
    ft = table.finish_time
    vol = table.volume
    bs = table.bytes_sent
    src_col = table.src
    dst_col = table.dst
    # Liveness filter and per-port byte aggregation fused into one pass
    # (same walk order, same accumulation order; ``remaining`` is computed
    # once and reused for the rate assignment below).
    todo: list[int] = []
    left: list[float] = []
    port_bytes: dict[int, float] = {}
    get = port_bytes.get
    for i in rows:
        if ft[i] is not None:
            continue
        remaining = vol[i] - bs[i]
        if remaining <= 0:
            continue
        todo.append(i)
        left.append(remaining)
        src = src_col[i]
        dst = dst_col[i]
        port_bytes[src] = get(src, 0.0) + remaining
        port_bytes[dst] = get(dst, 0.0) + remaining
    if not todo:
        return {}

    lcap = ledger.capacity_list
    lused = ledger.used_list
    gamma = 0.0
    for port, volume in port_bytes.items():
        residual = lcap[port] - lused[port]  # == ledger.residual(port)
        if residual <= 0:
            return {}
        share = volume / residual
        if share > gamma:
            gamma = share
    if gamma <= 0:
        return {}

    # Rate build and ledger commit fused into one pass; the commit
    # arithmetic (tolerance check, at-capacity clamp, touched-port
    # bookkeeping) is PortLedger.commit's, inlined.
    fid = table.flow_id
    touched = ledger.touched_set
    rates: dict[int, float] = {}
    for i, remaining in zip(todo, left):
        rate = remaining / gamma
        rates[fid[i]] = rate
        src = src_col[i]
        dst = dst_col[i]
        touched.add(src)
        touched.add(dst)
        cap = lcap[src]
        new_used = lused[src] + rate
        if new_used > cap * _CAPACITY_TOLERANCE:
            raise CapacityViolationError(str(src), new_used, cap)
        lused[src] = new_used if new_used < cap else cap
        cap = lcap[dst]
        new_used = lused[dst] + rate
        if new_used > cap * _CAPACITY_TOLERANCE:
            raise CapacityViolationError(str(dst), new_used, cap)
        lused[dst] = new_used if new_used < cap else cap
    return rates


def equal_rate_for_coflow(
    coflow: CoFlow,
    ledger: PortLedger,
    *,
    flows: Sequence[Flow] | None = None,
    port_counts: dict[int, int] | None = None,
) -> dict[int, float]:
    """Saath's D2 rule: one equal rate for every flow of the coflow.

    Non-clairvoyant. At each port the coflow's flows share the residual
    capacity fairly, so flow ``f``'s cap is
    ``min(residual(src)/n_src, residual(dst)/n_dst)`` where ``n_src`` is the
    number of the coflow's schedulable flows on that sender (resp.
    receiver). The coflow rate is the minimum cap over its flows — "the rate
    of the slowest flow is assigned to all the flows" (§4.2 D2) — and is
    committed to the ledger.

    ``port_counts`` optionally supplies the per-port flow counts over
    exactly ``flows`` (the cluster state's flow-group compaction cache, see
    :meth:`~repro.simulator.state.ClusterState.port_counts`), collapsing the
    counting and min-cap passes to O(ports touched) instead of O(flows).
    Every port's cap is the same division either way, and the minimum over
    the same multiset of caps is the same float, so the two paths are
    bit-identical.

    Returns ``{}`` if the equal rate would be zero.
    """
    todo = [f for f in (flows if flows is not None else coflow.flows)
            if f.finish_time is None]
    if not todo:
        return {}

    residual = ledger.residual
    rate = math.inf
    if port_counts is not None:
        for port, count in port_counts.items():
            cap = residual(port) / count
            if cap < rate:
                rate = cap
    else:
        count_at_port: dict[int, int] = defaultdict(int)
        for f in todo:
            count_at_port[f.src] += 1
            count_at_port[f.dst] += 1
        for f in todo:
            cap_src = residual(f.src) / count_at_port[f.src]
            cap_dst = residual(f.dst) / count_at_port[f.dst]
            rate = min(rate, cap_src, cap_dst)
    if not math.isfinite(rate) or rate <= 0:
        return {}

    rates = {f.flow_id: rate for f in todo}
    commit = ledger.commit
    for f in todo:
        commit(f.src, f.dst, rate)
    return rates


def equal_rate_for_coflow_rows(
    rows: Sequence[int],
    table: "FlowTable",
    ledger: PortLedger,
    *,
    port_counts: dict[int, int] | None = None,
) -> dict[int, float]:
    """Row-path twin of :func:`equal_rate_for_coflow` (same caps, same min).

    ``rows`` are the coflow's schedulable rows; ``port_counts`` is the
    cluster state's compaction cache exactly as in the object form.
    """
    metrics = ledger._metrics
    if table.fastcore and _core is not None and type(ledger) is PortLedger:
        if metrics is not None:
            metrics.inc("kernel.equal_rate_rows.fastcore")
        return _core.equal_rate_rows(
            rows, table.finish_time, table.src, table.dst, table.flow_id,
            ledger.capacity_list, ledger.used_list, ledger.touched_set,
            port_counts,
        )
    if metrics is not None:
        metrics.inc("kernel.equal_rate_rows.python")
    ft = table.finish_time
    todo = [i for i in rows if ft[i] is None]
    if not todo:
        return {}

    src_col = table.src
    dst_col = table.dst
    lcap = ledger.capacity_list
    lused = ledger.used_list
    rate = math.inf
    if port_counts is not None:
        for port, count in port_counts.items():
            r = lcap[port] - lused[port]  # == ledger.residual(port)
            cap = (r if r >= 0.0 else 0.0) / count
            if cap < rate:
                rate = cap
    else:
        residual = ledger.residual
        count_at_port: dict[int, int] = defaultdict(int)
        for i in todo:
            count_at_port[src_col[i]] += 1
            count_at_port[dst_col[i]] += 1
        for i in todo:
            cap_src = residual(src_col[i]) / count_at_port[src_col[i]]
            cap_dst = residual(dst_col[i]) / count_at_port[dst_col[i]]
            rate = min(rate, cap_src, cap_dst)
    if not math.isfinite(rate) or rate <= 0:
        return {}

    # Rate map and ledger commit fused (PortLedger.commit inlined: same
    # tolerance check, clamp and touched-port bookkeeping).
    fid = table.flow_id
    touched = ledger.touched_set
    rates: dict[int, float] = {}
    for i in todo:
        rates[fid[i]] = rate
        src = src_col[i]
        dst = dst_col[i]
        touched.add(src)
        touched.add(dst)
        cap = lcap[src]
        new_used = lused[src] + rate
        if new_used > cap * _CAPACITY_TOLERANCE:
            raise CapacityViolationError(str(src), new_used, cap)
        lused[src] = new_used if new_used < cap else cap
        cap = lcap[dst]
        new_used = lused[dst] + rate
        if new_used > cap * _CAPACITY_TOLERANCE:
            raise CapacityViolationError(str(dst), new_used, cap)
        lused[dst] = new_used if new_used < cap else cap
    return rates


def max_min_fair_paths(
    flows: Sequence[Flow],
    paths: "PathMap",
    ledger: PortLedger,
    *,
    rate_cap: float | None = None,
    commit: bool = True,
) -> dict[int, float]:
    """Path-aware twin of :func:`max_min_fair`: progressive filling over
    *every link* of each flow's path.

    Each flow constrains — and is constrained by — its sender port, its
    receiver port and the core links ``paths`` assigns to the pair, so the
    fair share saturates at the true bottleneck (an oversubscribed spine
    uplink, say) instead of only at host ports. The filling loop is the
    object form's with "port" generalised to "link": links are indexed in
    first-seen order (per flow: sender, receiver, then core links) and the
    tie-break is the first link in that order among equal shares. On a
    big-switch topology every path is ``(src, dst)`` and this function is
    **bit-identical** to :func:`max_min_fair` (asserted by the fuzz suite).

    ``commit=True`` commits through ``ledger.commit`` — on a
    :class:`~repro.simulator.topology.LinkLedger` that charges the whole
    path, consistent with the rates just computed.
    """
    active_map: dict[int, Flow] = {
        f.flow_id: f for f in flows if f.finish_time is None
    }
    if not active_map:
        return {}
    active = list(active_map.values())
    fids = list(active_map)
    if rate_cap is not None and rate_cap <= 0:
        return dict.fromkeys(fids, 0.0)

    extra_links = paths.extra_links
    # Dense link indexing in first-seen order (per flow: src, dst, extras).
    link_index: dict[int, int] = {}
    residual: list[float] = []
    live: list[int] = []
    #: dense link -> flow positions crossing it, in flow order.
    members: list[list[int]] = []
    num_flows = len(active)
    #: flow position -> dense indices of every link on its path.
    path_idx: list[tuple[int, ...]] = [()] * num_flows
    ledger_residual = ledger.residual
    for i, f in enumerate(active):
        idx = []
        for link in (f.src, f.dst, *extra_links(f.src, f.dst)):
            j = link_index.get(link)
            if j is None:
                j = link_index[link] = len(residual)
                residual.append(ledger_residual(link))
                live.append(1)
                members.append([i])
            else:
                live[j] += 1
                members[j].append(i)
            idx.append(j)
        path_idx[i] = tuple(idx)

    frozen = bytearray(num_flows)
    rate_of: list[float] = [0.0] * num_flows
    num_links = len(residual)
    remaining = num_flows

    while remaining:
        # Tightest link among those with unfrozen flows (ascending dense
        # index == first-seen order, the object form's tie-break).
        best_j = -1
        best_share = math.inf
        for j in range(num_links):
            count = live[j]
            if count == 0:
                continue
            share = residual[j] / count
            if share < best_share:
                best_share = share
                best_j = j
        if best_j < 0:
            break

        if rate_cap is not None and rate_cap < best_share:
            for i in range(num_flows):
                if not frozen[i]:
                    rate_of[i] = rate_cap
            break

        # Freeze the flows on the bottleneck link at the fair share,
        # subtracting it from every link of each frozen flow's path (same
        # per-update negative clamp as the object form).
        for i in members[best_j]:
            if frozen[i]:
                continue
            frozen[i] = 1
            rate_of[i] = best_share
            for j in path_idx[i]:
                nr = residual[j] - best_share
                residual[j] = nr if nr >= 0 else 0.0
                live[j] -= 1
            remaining -= 1

    rates = dict(zip(fids, rate_of))
    if commit:
        ledger_commit = ledger.commit
        for f, rate in zip(active, rate_of):
            if rate > 0:
                ledger_commit(f.src, f.dst, rate)
    return rates


def madd_rates_paths(
    coflow: CoFlow,
    ledger: PortLedger,
    paths: "PathMap",
    *,
    flows: Iterable[Flow] | None = None,
) -> dict[int, float]:
    """Path-aware twin of :func:`madd_rates`: Γ over every path link.

    The coflow's bottleneck completion time Γ is the maximum over all
    *links* (host ports plus assigned core links) of the link's remaining
    byte load divided by its residual capacity, so an oversubscribed core
    link correctly stretches the whole coflow. Returns ``{}`` when any
    needed link has no residual. Bit-identical to :func:`madd_rates` when
    no path crosses a core link.
    """
    todo = [f for f in (flows if flows is not None else coflow.flows)
            if f.finish_time is None and f.volume - f.bytes_sent > 0]
    if not todo:
        return {}

    extra_links = paths.extra_links
    link_bytes: dict[int, float] = {}
    get = link_bytes.get
    for f in todo:
        remaining = f.volume - f.bytes_sent
        link_bytes[f.src] = get(f.src, 0.0) + remaining
        link_bytes[f.dst] = get(f.dst, 0.0) + remaining
        for link in extra_links(f.src, f.dst):
            link_bytes[link] = get(link, 0.0) + remaining

    gamma = 0.0
    link_residual = ledger.residual
    for link, volume in link_bytes.items():
        residual = link_residual(link)
        if residual <= 0:
            return {}
        share = volume / residual
        if share > gamma:
            gamma = share
    if gamma <= 0:
        return {}

    rates = {f.flow_id: (f.volume - f.bytes_sent) / gamma for f in todo}
    commit = ledger.commit
    for f in todo:
        commit(f.src, f.dst, rates[f.flow_id])
    return rates


def equal_rate_for_coflow_paths(
    coflow: CoFlow,
    ledger: PortLedger,
    paths: "PathMap",
    *,
    flows: Sequence[Flow] | None = None,
    link_counts: dict[int, int] | None = None,
) -> dict[int, float]:
    """Path-aware twin of :func:`equal_rate_for_coflow` (Saath's D2 rule).

    Flow ``f``'s cap becomes the minimum over *every link on its path* of
    ``residual(link) / n_link`` (``n_link`` = the coflow's schedulable
    flows crossing the link), and the coflow rate is the minimum cap over
    its flows. ``link_counts`` optionally supplies the per-link counts
    over exactly ``flows`` (see
    :meth:`~repro.simulator.state.ClusterState.link_counts`) — the minimum
    over the same multiset of caps, so the two branches agree bitwise.
    Commits go through ``ledger.commit`` (path-charging on a
    :class:`~repro.simulator.topology.LinkLedger`). Bit-identical to the
    port-only form when no path crosses a core link.
    """
    todo = [f for f in (flows if flows is not None else coflow.flows)
            if f.finish_time is None]
    if not todo:
        return {}

    extra_links = paths.extra_links
    residual = ledger.residual
    rate = math.inf
    if link_counts is not None:
        for link, count in link_counts.items():
            cap = residual(link) / count
            if cap < rate:
                rate = cap
    else:
        count_at_link: dict[int, int] = defaultdict(int)
        for f in todo:
            count_at_link[f.src] += 1
            count_at_link[f.dst] += 1
            for link in extra_links(f.src, f.dst):
                count_at_link[link] += 1
        for f in todo:
            cap = residual(f.src) / count_at_link[f.src]
            if cap < rate:
                rate = cap
            cap = residual(f.dst) / count_at_link[f.dst]
            if cap < rate:
                rate = cap
            for link in extra_links(f.src, f.dst):
                cap = residual(link) / count_at_link[link]
                if cap < rate:
                    rate = cap
    if not math.isfinite(rate) or rate <= 0:
        return {}

    rates = {f.flow_id: rate for f in todo}
    commit = ledger.commit
    for f in todo:
        commit(f.src, f.dst, rate)
    return rates


def greedy_residual_rates(
    flows: Sequence[Flow],
    ledger: PortLedger,
) -> dict[int, float]:
    """Work-conservation fill (Fig. 7 lines 18–23).

    Walk ``flows`` in order, giving each flow
    ``min(sender residual, receiver residual)`` and committing it. Later
    flows see capacity already consumed by earlier ones, so the input order
    is the scheduling priority order.

    Ports observed exhausted are remembered for the rest of the walk:
    residuals only decrease within one fill pass, so skipping a flow on a
    dead port is exactly the zero-rate no-op the fill would have returned,
    and the pass stops probing the ledger once the fabric saturates (most
    of the walk, on a loaded cluster).
    """
    rates: dict[int, float] = {}
    fill = ledger.fill
    residual = ledger.residual
    dead: set[int] = set()
    for f in flows:
        if f.finish_time is not None:
            continue
        src = f.src
        dst = f.dst
        if src in dead or dst in dead:
            continue
        rate = fill(src, dst)
        if rate > 0:
            rates[f.flow_id] = rate
        else:
            if residual(src) <= 0:
                dead.add(src)
            if residual(dst) <= 0:
                dead.add(dst)
    return rates


def greedy_residual_rates_rows(
    rows: Sequence[int],
    table: "FlowTable",
    ledger: PortLedger,
) -> dict[int, float]:
    """Row-path twin of :func:`greedy_residual_rates` (same walk order)."""
    metrics = ledger._metrics
    if table.fastcore and _core is not None and type(ledger) is PortLedger:
        if metrics is not None:
            metrics.inc("kernel.greedy_rows.fastcore")
        return _core.greedy_rows(
            rows, table.finish_time, table.flow_id, table.src, table.dst,
            ledger.capacity_list, ledger.used_list, ledger.touched_set,
        )
    if metrics is not None:
        metrics.inc("kernel.greedy_rows.python")
    rates: dict[int, float] = {}
    dead: set[int] = set()
    ft = table.finish_time
    fid = table.flow_id
    src_col = table.src
    dst_col = table.dst
    # Fused PortLedger.fill: identical grant arithmetic and touched-port
    # bookkeeping over the ledger's dense lists, without a method call per
    # flow. ``residual(p) <= 0`` is ``capacity - used <= 0`` (the max-with-
    # zero clamp never changes the sign).
    lcap = ledger.capacity_list
    lused = ledger.used_list
    touched = ledger.touched_set
    for i in rows:
        if ft[i] is not None:
            continue
        src = src_col[i]
        dst = dst_col[i]
        if src in dead or dst in dead:
            continue
        rate = lcap[src] - lused[src]
        rate_dst = lcap[dst] - lused[dst]
        if rate_dst < rate:
            rate = rate_dst
        if rate > 0:
            lused[src] += rate
            lused[dst] += rate
            touched.add(src)
            touched.add(dst)
            rates[fid[i]] = rate
        else:
            if lcap[src] - lused[src] <= 0:
                dead.add(src)
            if lcap[dst] - lused[dst] <= 0:
                dead.add(dst)
    return rates
