"""Fluid-flow discrete-event simulation engine.

The engine advances a set of coflows through a big-switch fabric under the
control of a :class:`~repro.schedulers.base.Scheduler`. Between events every
flow moves at a constant allocated rate, so the engine only needs to visit:

* external events — coflow arrivals and dynamics actions,
* flow completions under the current allocation,
* scheduler wakeups — queue-threshold crossings and starvation deadlines,
* (sync mode) δ-grid boundaries at which new schedules take effect.

**Coordinator timing model (§5).** With ``sync_interval == 0`` the scheduler
reacts instantly to every event (the idealised coordinator used for the main
simulation results). With ``δ = sync_interval > 0``, state changes are only
*acted on* at the next multiple of δ: a coflow arriving at ``t`` is first
scheduled at ``ceil(t/δ)·δ``, and bandwidth freed by a completion stays idle
until that boundary — exactly the staleness that Fig. 14(c) measures.
Because rates are constant between state changes, recomputing at every grid
point would yield identical schedules, so the engine only recomputes at grid
points *following* a state change; this is an exact optimisation, not an
approximation.

**Allocation epochs (``config.epochs``).** Each applied allocation opens an
*epoch*: the engine keeps the previous round's raw ``flow_id → rate`` map
and applies the next allocation as a diff, touching only flows whose rate
changed (C-level dict-view set operations find the changed entries), while
``_running`` / ``_running_cids`` are maintained in place instead of being
rebuilt from every pending flow. Completion lookout uses a lazy min-heap
keyed by ``(predicted finish lower bound, epoch, flow_id)``: entries from
superseded epochs are popped and discarded lazily, and each event pops only
the entries whose lower bound could beat the provisional minimum — for
those few flows the exact per-event arithmetic of the full scan is
replayed, so the chosen instant is bit-identical to the scan's (see
:meth:`Simulator._heap_completion` for the monotonicity argument). When a
round churns most rates (UC-TCP recomputes global fair shares every event),
the heap would cost more than it saves, so the engine falls back to the
plain scan until churn subsides. ``epochs=False`` restores the pre-epoch
engine; both paths produce byte-identical :class:`SimulationResult`\\ s
(asserted by the equivalence suite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable, Iterable, Protocol

from ..config import SimulationConfig
from ..errors import SimulationError
from ..schedulers.base import Allocation, Scheduler
from .events import Event, EventKind, EventQueue
from .fabric import Fabric
from .flows import CoFlow, Flow
from .state import ClusterState


class DynamicsAction(Protocol):
    """Dynamics events (failures, stragglers, …) applied at their instant."""

    time: float

    def apply(self, sim: "Simulator", now: float) -> None:
        """Mutate simulator state; the engine reschedules afterwards."""
        ...  # pragma: no cover - protocol


class ScheduleObserver(Protocol):
    """Telemetry hook notified after every schedule application."""

    def on_schedule(self, state: ClusterState, allocation: Allocation,
                    now: float) -> None:
        ...  # pragma: no cover - protocol


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    #: Every coflow that finished, in completion order.
    coflows: list[CoFlow] = field(default_factory=list)
    #: Number of schedule computations performed.
    reschedules: int = 0
    #: Simulated time at which the last coflow finished.
    makespan: float = 0.0
    #: Lazily-built ``coflow_id → CoFlow`` index backing :meth:`cct` and
    #: :meth:`coflow`, which analysis code calls in per-coflow loops.
    _by_id: dict[int, CoFlow] = field(
        default_factory=dict, repr=False, compare=False
    )

    def _index(self) -> dict[int, CoFlow]:
        by_id = self._by_id
        if len(by_id) != len(self.coflows):
            by_id.clear()
            for c in self.coflows:
                by_id[c.coflow_id] = c
        return by_id

    def cct(self, coflow_id: int) -> float:
        try:
            return self._index()[coflow_id].cct()
        except KeyError:
            raise KeyError(f"coflow {coflow_id} not in result") from None

    def ccts(self) -> dict[int, float]:
        """coflow_id → CCT for every finished coflow."""
        return {c.coflow_id: c.cct() for c in self.coflows}

    def average_cct(self) -> float:
        if not self.coflows:
            return 0.0
        return sum(c.cct() for c in self.coflows) / len(self.coflows)

    def coflow(self, coflow_id: int) -> CoFlow:
        try:
            return self._index()[coflow_id]
        except KeyError:
            raise KeyError(f"coflow {coflow_id} not in result") from None


#: Relative + absolute safety margin applied to heap lower bounds so that
#: stepwise float drift in ``bytes_sent`` between the anchor event and the
#: instant a completion actually fires can only cause an extra (exact)
#: recomputation, never a missed completion. Deliberately much wider than
#: the drift of any realistic event chain.
_HEAP_MARGIN_REL = 1e-9
_HEAP_MARGIN_ABS = 1e-12


class Simulator:
    """Drives one scheduler over one workload on one fabric."""

    def __init__(
        self,
        fabric: Fabric,
        scheduler: Scheduler,
        config: SimulationConfig,
        *,
        dynamics: Iterable[DynamicsAction] = (),
        rate_perturbation: Callable[[Flow, float], float] | None = None,
        observer: "ScheduleObserver | None" = None,
    ):
        self.fabric = fabric
        self.scheduler = scheduler
        self.config = config
        self._dynamics = list(dynamics)
        #: Optional testbed-mode hook mapping (flow, allocated rate) to the
        #: *achieved* rate — models imperfect rate enforcement (§7 setup).
        self._rate_perturbation = rate_perturbation
        #: Optional telemetry observer notified after every schedule
        #: application (see repro.analysis.telemetry.TelemetryRecorder).
        self._observer = observer
        if observer is not None and hasattr(observer, "bind_scheduler"):
            observer.bind_scheduler(scheduler)

        self.state = ClusterState(fabric=fabric)
        #: Per-flow efficiency factors (< 1 for straggling flows, §4.3).
        self.flow_efficiency: dict[int, float] = {}

        self._events = EventQueue()
        self._now = 0.0
        self._next_sync: float | None = None
        self._waiting_dag: dict[int, CoFlow] = {}
        #: Dependency index (coflow_id → still-unmet dependency ids) and its
        #: inverse (dependency id → waiting coflows, arrival order), so a
        #: coflow completion releases dependents in O(dependents) instead of
        #: rescanning every DAG-blocked coflow.
        self._unmet_deps: dict[int, set[int]] = {}
        self._dep_waiters: dict[int, list[CoFlow]] = {}
        self._finished_ids: set[int] = set()
        self._result = SimulationResult()
        #: Flows with a positive rate under the current allocation, plus
        #: flows that may already be complete (zero-volume on arrival).
        #: Only these can change state between events — keeping the hot
        #: loops off the full active set is the engine's main optimisation.
        #: Under ``epochs`` this is a live view of ``_running_map``.
        self._running: "list[Flow] | object" = []
        #: Coflow ids with at least one running flow, precomputed at
        #: allocation time so time advancement can mark "progressed"
        #: coflows in the scheduling delta with one set union.
        self._running_cids: frozenset[int] = frozenset()
        self._maybe_done: list[tuple[Flow, CoFlow]] = []
        self._coflow_of: dict[int, CoFlow] = {}
        #: Lower bound (absolute time) before which no running flow can
        #: satisfy the completion predicate; lets _process_completions skip
        #: its scan on pure arrival / sync steps. Maintained by
        #: _earliest_completion; -inf means "unknown, always scan".
        self._no_completion_before: float = -math.inf
        #: Flows whose completion predicate fired during the last time
        #: advance (collected while moving bytes, so the completion pass
        #: walks only these instead of rescanning every running flow).
        self._completion_candidates: list[Flow] = []
        #: True when the current step advanced time, i.e. the candidate
        #: list above is authoritative. Zero-width steps (several events at
        #: one instant) and dynamics fall back to the full scan.
        self._advanced_this_step = False

        # ---- allocation-epoch state (config.epochs) ----------------------
        #: Rate perturbation rewrites every rate on every application, so
        #: nothing can be diffed; the epoch machinery disables itself.
        self._epochs_engine = config.epochs and rate_perturbation is None
        #: Raw flow_id → rate map of the previously applied allocation.
        self._prev_rates: dict[int, float] = {}
        #: flow_id → Flow for flows with a positive applied rate.
        self._running_map: dict[int, Flow] = {}
        #: flow_id → running-flow count per coflow backing ``_running_cids``.
        self._running_count: dict[int, int] = {}
        #: Flows whose raw rate is positive but whose data is not yet
        #: available (§4.3): re-evaluated on every diffed application.
        self._gated: dict[int, Flow] = {}
        #: flow_id → (Flow, position in coflow.flows) for active coflows;
        #: the positions restore the legacy completion-candidate order.
        self._flow_by_id: dict[int, Flow] = {}
        self._flow_pos: dict[int, int] = {}
        #: coflow_id → index in ``state.active_coflows`` (candidate order).
        self._active_pos: dict[int, int] = {}
        #: Per-flow allocation epoch: bumped whenever the applied rate
        #: changes, invalidating that flow's completion-heap entries.
        self._flow_epoch: dict[int, int] = {}
        #: Lazy completion min-heap of (finish lower bound, epoch, flow_id).
        self._heap: list[tuple[float, int, int]] = []
        #: Running flows whose rate changed since their last heap entry.
        self._unheaped: dict[int, Flow] = {}
        #: True once the heap covers every running flow (warm).
        self._heap_live = False
        #: Next _earliest_completion should seed the heap during its scan.
        self._seed_pending = False
        #: Next application must be a full rebuild (first round; dynamics).
        self._full_apply_pending = True
        #: Events seen since the last allocation application — the reseed
        #: heuristic's estimate of how many events share one δ window.
        self._events_since_apply = 0
        if self._epochs_engine:
            self._running = self._running_map.values()

    # ---- public API -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    def run(self, coflows: Iterable[CoFlow]) -> SimulationResult:
        """Simulate to completion and return per-coflow results."""
        submitted = list(coflows)
        self._validate_workload(submitted)
        for c in submitted:
            self._events.push(
                Event(c.arrival_time, EventKind.COFLOW_ARRIVAL, c)
            )
        for action in self._dynamics:
            self._events.push(Event(action.time, EventKind.DYNAMICS, action))

        self._loop(expected=len(submitted))
        self._result.makespan = max(
            (c.finish_time or 0.0 for c in self._result.coflows), default=0.0
        )
        return self._result

    # ---- main loop -------------------------------------------------------------

    def _loop(self, expected: int) -> None:
        while len(self._finished_ids) < expected:
            t_next = self._next_instant()
            if math.isinf(t_next):
                self._raise_stuck()
            if t_next > self.config.max_sim_time:
                raise SimulationError(
                    f"simulation exceeded max_sim_time="
                    f"{self.config.max_sim_time}; likely a livelock"
                )
            self._advance_to(t_next)

            changed = self._process_completions()
            changed |= self._process_external_events()
            if changed:
                self._request_resync(self._now)

            if self._next_sync is not None and self._next_sync <= self._now:
                self._recompute_schedule()

    def _next_instant(self) -> float:
        """Earliest of: external event, flow completion, pending sync."""
        self._events_since_apply += 1
        candidates: list[float] = []
        head = self._events.peek_time()
        if head is not None:
            candidates.append(head)
        if self._next_sync is not None:
            candidates.append(self._next_sync)
        completion = self._earliest_completion()
        if completion is not None:
            candidates.append(completion)
        if not candidates:
            return math.inf
        return max(min(candidates), self._now)

    def _flow_complete(self, f: Flow) -> bool:
        """Completion predicate with a rate-relative guard.

        Absolute byte tolerance alone is not enough: a fast flow can be
        left with ``remaining`` just above ``epsilon_bytes`` whose transfer
        time (< 1e-12 s) underflows float64 time addition, freezing the
        clock. Anything needing less than ~10 ns at its current rate is
        complete.
        """
        remaining = f.volume - f.bytes_sent
        if remaining <= self.config.epsilon_bytes:
            return True
        return f.rate > 0 and remaining <= f.rate * 1e-8

    def _earliest_completion(self) -> float | None:
        if self._maybe_done:
            self._no_completion_before = self._now
            return self._now
        if self._heap_live:
            return self._heap_completion()
        # Inlined _flow_complete: this scan runs for every running flow at
        # every event, so attribute/method dispatch overhead is material.
        # When a seed was requested the same pass pushes a margined lower
        # bound per flow, warming the heap for subsequent events.
        seed = self._seed_pending
        heap = self._heap
        epoch = self._flow_epoch
        push = heappush
        eps = self.config.epsilon_bytes
        best = math.inf
        pred_min = math.inf
        now = self._now
        for f in self._running:
            if f.finish_time is not None:
                continue
            remaining = f.volume - f.bytes_sent
            rate = f.rate
            if remaining <= eps or (rate > 0 and remaining <= rate * 1e-8):
                self._no_completion_before = now
                if seed:
                    heap.clear()  # partial seed; retry next event
                return now
            if rate > 0:
                ttc = remaining / rate
                if ttc < best:
                    best = ttc
                # Earliest instant the completion predicate can start
                # firing for this flow: its tolerance window opens
                # max(eps, rate*1e-8) bytes before the exact finish.
                slack = eps if eps > rate * 1e-8 else rate * 1e-8
                pred = (remaining - slack) / rate
                if pred < pred_min:
                    pred_min = pred
                if seed:
                    push(heap, (
                        now + pred - abs(pred) * _HEAP_MARGIN_REL
                        - _HEAP_MARGIN_ABS,
                        epoch[f.flow_id], f.flow_id,
                    ))
        if seed:
            self._seed_pending = False
            self._heap_live = True
            self._unheaped.clear()
        # Conservative margin (a few ulps) so float noise can only make us
        # scan unnecessarily, never miss a completion.
        self._no_completion_before = (
            now + pred_min - abs(pred_min) * 1e-12 - 1e-15
            if math.isfinite(pred_min) else math.inf
        )
        return now + best if math.isfinite(best) else None

    def _heap_completion(self) -> float | None:
        """Next completion instant via the lazy heap (epochs engine, warm).

        Exactness: the full scan returns ``now + min_f(remaining_f/rate_f)``
        and float addition is monotone, so that equals
        ``min_f(now + remaining_f/rate_f)``. Every running flow holds a heap
        entry whose key lower-bounds its ``now + remaining/rate`` at any
        later event of its epoch (margin covers stepwise float drift), so
        popping entries while the top key beats the provisional best — and
        recomputing those few flows with the scan's exact per-event
        arithmetic — yields the same minimum as scanning everything. Flows
        rescheduled since the last event sit in ``_unheaped`` and are
        scanned exactly (and re-heaped) first; stale epochs are discarded.
        """
        now = self._now
        eps = self.config.epsilon_bytes
        heap = self._heap
        epoch = self._flow_epoch
        push = heappush
        running = self._running_map
        best = math.inf  # absolute instant
        if self._unheaped:
            for fid, f in self._unheaped.items():
                if f.finish_time is not None:
                    continue
                remaining = f.volume - f.bytes_sent
                rate = f.rate
                if remaining <= eps or (
                        rate > 0 and remaining <= rate * 1e-8):
                    # Unheaped flows are re-examined next event, so bailing
                    # out without clearing the set is safe.
                    self._no_completion_before = now
                    return now
                if rate > 0:
                    t = now + remaining / rate
                    if t < best:
                        best = t
                    slack = eps if eps > rate * 1e-8 else rate * 1e-8
                    pred = (remaining - slack) / rate
                    push(heap, (
                        now + pred - abs(pred) * _HEAP_MARGIN_REL
                        - _HEAP_MARGIN_ABS,
                        epoch[fid], fid,
                    ))
            self._unheaped.clear()
        seen: set[int] = set()
        repush: list[tuple[float, int, int]] = []
        while heap and heap[0][0] < best:
            entry = heappop(heap)
            fid = entry[2]
            f = running.get(fid)
            if (f is None or epoch.get(fid) != entry[1]
                    or f.finish_time is not None or fid in seen):
                continue  # stale epoch / finished / already refreshed
            rate = f.rate
            if rate <= 0:
                continue  # silenced mid-window; reallocation re-heaps it
            remaining = f.volume - f.bytes_sent
            if remaining <= eps or remaining <= rate * 1e-8:
                push(heap, entry)
                for e in repush:
                    push(heap, e)
                self._no_completion_before = now
                return now
            t = now + remaining / rate
            if t < best:
                best = t
            slack = eps if eps > rate * 1e-8 else rate * 1e-8
            pred = (remaining - slack) / rate
            seen.add(fid)
            repush.append((
                now + pred - abs(pred) * _HEAP_MARGIN_REL - _HEAP_MARGIN_ABS,
                entry[1], fid,
            ))
        for e in repush:
            push(heap, e)
        # Every running flow still has an entry, so the heap top bounds all
        # completion windows from below (stale entries only push it lower,
        # which is conservative: the completion pass may scan needlessly
        # but can never be skipped wrongly).
        self._no_completion_before = heap[0][0] if heap else math.inf
        return best if math.isfinite(best) else None

    def _go_cold(self) -> None:
        """Drop the completion heap; fall back to full scans until reseeded."""
        self._heap_live = False
        self._seed_pending = False
        self._heap.clear()
        self._unheaped.clear()

    def _advance_to(self, t: float) -> None:
        dt = t - self._now
        if dt < 0:
            raise SimulationError(f"time went backwards: {self._now} -> {t}")
        if dt > 0:
            # Inlined Flow.advance for the hot loop (same semantics),
            # collecting flows whose completion predicate fires so the
            # completion pass needn't rescan the whole running set.
            eps = self.config.epsilon_bytes
            candidates = self._completion_candidates
            candidates.clear()
            for f in self._running:
                rate = f.rate
                if rate > 0 and f.finish_time is None:
                    volume = f.volume
                    sent = f.bytes_sent + rate * dt
                    if sent > volume:
                        sent = volume
                    f.bytes_sent = sent
                    remaining = volume - sent
                    if remaining <= eps or remaining <= rate * 1e-8:
                        candidates.append(f)
            self.state.delta.progressed |= self._running_cids
            self._advanced_this_step = True
        else:
            self._advanced_this_step = False
        self._now = t

    # ---- event processing ---------------------------------------------------------

    def _process_completions(self) -> bool:
        if not self._maybe_done and self._now < self._no_completion_before:
            # The pre-advance scan proved no flow can have completed yet
            # (this step stops strictly before any completion window).
            return False
        raw: list[Flow]
        if self._advanced_this_step:
            # The advance loop already found every flow whose completion
            # predicate fired; no second scan over the running set needed.
            raw = self._completion_candidates
            self._completion_candidates = []
        else:
            # Zero-width step (events piling up at one instant): rates may
            # have changed since the last advance, so scan everything —
            # exactly what the original per-event pass did.
            raw = []
            eps = self.config.epsilon_bytes
            for f in self._running:
                # Inlined _flow_complete (see _earliest_completion).
                if f.finish_time is not None:
                    continue
                remaining = f.volume - f.bytes_sent
                if remaining <= eps or (
                        f.rate > 0 and remaining <= f.rate * 1e-8):
                    raw.append(f)
        if len(raw) > 1:
            # The running set is maintained incrementally under epochs, so
            # its iteration order drifts from the legacy rebuild order;
            # restore it (active-coflow position, then flow position) so
            # same-instant completions are recorded identically. On the
            # legacy path the list is already in this order (stable no-op).
            active_pos = self._active_pos
            flow_pos = self._flow_pos
            raw.sort(key=lambda f: (active_pos[f.coflow_id],
                                    flow_pos[f.flow_id]))
        candidates = [(f, self._coflow_of[f.coflow_id]) for f in raw]
        if self._maybe_done:
            candidates.extend(self._maybe_done)
            self._maybe_done = []

        touched: dict[int, CoFlow] = {}
        for f, coflow in candidates:
            if f.finished or not self._flow_complete(f):
                continue
            f.bytes_sent = f.volume
            f.rate = 0.0
            f.finish_time = self._now
            self.state.note_flow_finished(f)
            self.scheduler.on_flow_completion(f, coflow, self._now)
            touched[coflow.coflow_id] = coflow
        if not touched:
            return False

        done: set[int] = set()
        for coflow in touched.values():
            if coflow.all_flows_finished():
                coflow.finish_time = self._now
                self._finished_ids.add(coflow.coflow_id)
                self._result.coflows.append(coflow)
                self.scheduler.on_coflow_completion(coflow, self._now)
                done.add(coflow.coflow_id)
                del self._coflow_of[coflow.coflow_id]
                self._evict_coflow(coflow)
        if done:
            self.state.active_coflows = [
                c for c in self.state.active_coflows
                if c.coflow_id not in done
            ]
            self._active_pos = {
                c.coflow_id: i
                for i, c in enumerate(self.state.active_coflows)
            }
            for coflow_id in done:
                self.state.note_coflow_finished(coflow_id)
                self._release_dependents_of(coflow_id)
        return True

    def _evict_coflow(self, coflow: CoFlow) -> None:
        """Drop a finished coflow's flows from the epoch-engine indices.

        ``_running_count`` is updated so future ``_running_cids`` rebuilds
        are correct, but the current frozenset is left untouched: the
        legacy engine also keeps a finished coflow's id in the progressed
        mark-set until the next allocation is applied.
        """
        flow_by_id = self._flow_by_id
        flow_pos = self._flow_pos
        epoch = self._flow_epoch
        running = self._running_map
        counts = self._running_count
        for f in coflow.flows:
            fid = f.flow_id
            flow_by_id.pop(fid, None)
            flow_pos.pop(fid, None)
            epoch.pop(fid, None)
            self._gated.pop(fid, None)
            self._unheaped.pop(fid, None)
            if running.pop(fid, None) is not None:
                left = counts.get(coflow.coflow_id, 0) - 1
                if left > 0:
                    counts[coflow.coflow_id] = left
                else:
                    counts.pop(coflow.coflow_id, None)

    def _process_external_events(self) -> bool:
        changed = False
        while True:
            head = self._events.peek_time()
            if head is None or head > self._now + 1e-15:
                break
            event = self._events.pop()
            if event.kind is EventKind.COFLOW_ARRIVAL:
                self._handle_arrival(event.payload)
                changed = True
            elif event.kind is EventKind.DYNAMICS:
                event.payload.apply(self, self._now)
                if not isinstance(event.payload, _DataAvailable):
                    # Arbitrary mutation (restarts, capacity changes, …):
                    # incremental bookkeeping must rebuild from scratch.
                    # Data-availability wakeups change nothing the delta
                    # vocabulary tracks, so they stay incremental.
                    self.state.note_dynamics()
                    # Rates/ports may have been rewritten under the epoch
                    # engine's feet: drop the heap (scans are always exact)
                    # and rebuild the diff baseline at the next round.
                    self._full_apply_pending = True
                    self._go_cold()
                changed = True
            else:  # SYNC markers never enter the external queue
                raise SimulationError(f"unexpected event kind {event.kind}")
        return changed

    def _handle_arrival(self, coflow: CoFlow) -> None:
        unmet = {d for d in coflow.depends_on if d not in self._finished_ids}
        if unmet:
            self._waiting_dag[coflow.coflow_id] = coflow
            self._unmet_deps[coflow.coflow_id] = unmet
            for dep in unmet:
                self._dep_waiters.setdefault(dep, []).append(coflow)
            return
        self._activate(coflow)

    def _activate(self, coflow: CoFlow) -> None:
        # DAG-released stages start counting CCT from their release instant.
        coflow.arrival_time = max(coflow.arrival_time, self._now)
        self._active_pos[coflow.coflow_id] = len(self.state.active_coflows)
        self.state.active_coflows.append(coflow)
        self.state.note_activated(coflow)
        self._coflow_of[coflow.coflow_id] = coflow
        flow_by_id = self._flow_by_id
        flow_pos = self._flow_pos
        epoch = self._flow_epoch
        for pos, f in enumerate(coflow.flows):
            flow_by_id[f.flow_id] = f
            flow_pos[f.flow_id] = pos
            epoch[f.flow_id] = 0
        self.scheduler.on_coflow_arrival(coflow, self._now)
        for f in coflow.flows:
            # Wake the scheduler when pipelined data becomes available
            # (§4.3), and catch zero-volume flows that are born complete.
            if f.available_time > self._now:
                self._events.push(
                    Event(f.available_time, EventKind.DYNAMICS,
                          _DataAvailable(f.available_time))
                )
            if f.volume - f.bytes_sent <= self.config.epsilon_bytes:
                self._maybe_done.append((f, coflow))

    def _release_dependents_of(self, finished_id: int) -> None:
        waiters = self._dep_waiters.pop(finished_id, None)
        if not waiters:
            return
        for c in waiters:
            unmet = self._unmet_deps.get(c.coflow_id)
            if unmet is None:
                continue  # already released via another dependency list
            unmet.discard(finished_id)
            if not unmet:
                del self._unmet_deps[c.coflow_id]
                del self._waiting_dag[c.coflow_id]
                self._activate(c)

    # ---- scheduling ------------------------------------------------------------------

    def _request_resync(self, t: float) -> None:
        """Ask for a schedule recomputation, quantised to the δ grid."""
        delta = self.config.sync_interval
        if delta > 0:
            t = math.ceil((t - 1e-12) / delta) * delta
        if self._next_sync is None or t < self._next_sync:
            self._next_sync = t

    def _recompute_schedule(self) -> None:
        self._next_sync = None
        allocation = self.scheduler.schedule(self.state, self._now)
        self.state.delta.clear()
        self._apply_allocation(allocation)
        self._result.reschedules += 1
        if self._observer is not None:
            self._observer.on_schedule(self.state, allocation, self._now)
        wakeup = self.scheduler.next_wakeup(self.state, allocation, self._now)
        # Sub-nanosecond wakeups cannot advance float64 time at realistic
        # clock values; dropping them avoids reschedule storms.
        if wakeup is not None and wakeup > self._now + 1e-9:
            self._request_resync(wakeup)

    def _apply_allocation(self, allocation: Allocation) -> None:
        if self._epochs_engine:
            if self._full_apply_pending:
                self._full_apply_pending = False
                self._apply_full_epoch(allocation)
            else:
                self._apply_diff(allocation)
            return
        running: list[Flow] = []
        running_cids: set[int] = set()
        rates_get = allocation.rates.get
        efficiency = self.flow_efficiency
        perturb = self._rate_perturbation
        state = self.state
        now = self._now
        for coflow in state.active_coflows:
            for f in state.pending_flows(coflow):
                if f.finish_time is not None:
                    continue
                rate = rates_get(f.flow_id, 0.0)
                if rate > 0:
                    if f.available_time > now:
                        # §4.3: data not yet produced cannot be sent. A
                        # scheduler that allocates here (availability-
                        # oblivious) has reserved the ports for nothing —
                        # the slot is wasted, which is the behaviour the
                        # data-unavailability experiment measures.
                        rate = 0.0
                    elif efficiency:
                        rate *= efficiency.get(f.flow_id, 1.0)
                    if rate > 0 and perturb is not None:
                        rate = perturb(f, rate)
                f.rate = rate if rate > 0.0 else 0.0
                if f.rate > 0:
                    running.append(f)
                    running_cids.add(f.coflow_id)
                    if f.start_time is None:
                        f.start_time = now
        self._running = running
        self._running_cids = frozenset(running_cids)

    def _apply_full_epoch(self, allocation: Allocation) -> None:
        """Full rebuild opening a fresh epoch baseline (first round or
        after dynamics mutated state in ways a diff cannot describe)."""
        self._go_cold()
        running = self._running_map
        running.clear()  # in place: ``self._running`` is a live view
        counts: dict[int, int] = {}
        gated: dict[int, Flow] = {}
        rates_get = allocation.rates.get
        efficiency = self.flow_efficiency
        state = self.state
        now = self._now
        for coflow in state.active_coflows:
            for f in state.pending_flows(coflow):
                if f.finish_time is not None:
                    continue
                fid = f.flow_id
                rate = rates_get(fid, 0.0)
                if rate > 0:
                    if f.available_time > now:
                        rate = 0.0
                        gated[fid] = f
                    elif efficiency:
                        rate *= efficiency.get(fid, 1.0)
                f.rate = rate if rate > 0.0 else 0.0
                if f.rate > 0:
                    running[fid] = f
                    cid = f.coflow_id
                    counts[cid] = counts.get(cid, 0) + 1
                    if f.start_time is None:
                        f.start_time = now
        self._running_count = counts
        self._running_cids = frozenset(counts)
        self._gated = gated
        self._prev_rates = allocation.rates

    def _apply_diff(self, allocation: Allocation) -> None:
        """Apply an allocation as a diff against the previous epoch.

        Only flows whose raw rate changed — plus availability-gated flows,
        whose effective rate can change with time alone — are touched;
        everyone else keeps rate, membership and heap entries. The diff is
        found with C-level dict-view set operations, so a quiet round costs
        O(changed) instead of O(active flows).
        """
        new = allocation.rates
        prev = self._prev_rates
        dropped = prev.keys() - new.keys()
        changed = new.items() - prev.items()
        gated = self._gated
        running = self._running_map
        counts = self._running_count

        # Heap policy: high-churn rounds (UC-TCP rewrites global fair
        # shares every event) would push an entry per flow per event —
        # costlier than the plain scan — so the heap goes cold when the
        # churn fraction spikes. When several events share each
        # application window (δ > 0 batching completions), one seed scan
        # still amortises over the window's remaining events, so a reseed
        # is requested; back-to-back applications stay cold.
        churn = len(dropped) + len(changed)
        if churn * 2 > len(running) + 1:
            self._go_cold()
            if self._events_since_apply >= 2:
                self._seed_pending = True
        elif not self._heap_live:
            self._seed_pending = True
        self._events_since_apply = 0
        track = self._heap_live
        # Epoch bumps exist to invalidate heap entries; while the heap is
        # cold it is empty (go_cold clears it), so there is nothing to
        # invalidate and the per-flow counter churn can be skipped. Entries
        # seeded later capture whatever epoch values are current.
        bump_epochs = track or self._seed_pending

        flows = self._flow_by_id
        epoch = self._flow_epoch
        unheaped = self._unheaped
        efficiency = self.flow_efficiency
        now = self._now
        members_changed = False

        for fid in dropped:
            f = flows.get(fid)
            if f is not None and f.finish_time is None and f.rate != 0.0:
                f.rate = 0.0
                if bump_epochs:
                    epoch[fid] += 1
            if running.pop(fid, None) is not None:
                members_changed = True
                cid = f.coflow_id  # type: ignore[union-attr]
                left = counts[cid] - 1
                if left > 0:
                    counts[cid] = left
                else:
                    del counts[cid]
            gated.pop(fid, None)
            unheaped.pop(fid, None)

        process: list[tuple[int, float]] = list(changed)
        if gated:
            # Unchanged raw rate, but the availability window may have
            # opened since the last round: always re-evaluate.
            new_get = new.get
            for fid in gated:
                process.append((fid, new_get(fid, 0.0)))
        for fid, raw in process:
            f = flows.get(fid)
            if f is None or f.finish_time is not None:
                continue
            rate = raw
            if rate > 0:
                if f.available_time > now:
                    rate = 0.0
                    gated[fid] = f
                else:
                    gated.pop(fid, None)
                    if efficiency:
                        rate *= efficiency.get(fid, 1.0)
            if rate <= 0.0:
                rate = 0.0
            if rate != f.rate:
                f.rate = rate
                if bump_epochs:
                    epoch[fid] += 1
                if rate > 0:
                    if fid not in running:
                        running[fid] = f
                        members_changed = True
                        cid = f.coflow_id
                        counts[cid] = counts.get(cid, 0) + 1
                    if track:
                        unheaped[fid] = f
                    if f.start_time is None:
                        f.start_time = now
                else:
                    if running.pop(fid, None) is not None:
                        members_changed = True
                        cid = f.coflow_id
                        left = counts[cid] - 1
                        if left > 0:
                            counts[cid] = left
                        else:
                            del counts[cid]
                    unheaped.pop(fid, None)
        self._prev_rates = new
        if members_changed:
            self._running_cids = frozenset(counts)

    # ---- diagnostics --------------------------------------------------------------------

    def _raise_stuck(self) -> None:
        stuck = [
            c.coflow_id
            for c in self.state.active_coflows
            if not c.all_flows_finished()
        ]
        waiting = sorted(self._waiting_dag)
        raise SimulationError(
            f"simulation stalled at t={self._now}: no future events, "
            f"active coflows {stuck}, DAG-blocked coflows {waiting}. "
            f"This usually means the scheduler allocated zero rate to every "
            f"remaining flow, or a DAG dependency cycle exists."
        )

    @staticmethod
    def _validate_workload(coflows: list[CoFlow]) -> None:
        seen_cf: set[int] = set()
        seen_fl: set[int] = set()
        for c in coflows:
            if c.coflow_id in seen_cf:
                raise SimulationError(f"duplicate coflow id {c.coflow_id}")
            seen_cf.add(c.coflow_id)
            for f in c.flows:
                if f.flow_id in seen_fl:
                    raise SimulationError(f"duplicate flow id {f.flow_id}")
                seen_fl.add(f.flow_id)
        ids = seen_cf
        for c in coflows:
            for dep in c.depends_on:
                if dep not in ids:
                    raise SimulationError(
                        f"coflow {c.coflow_id} depends on unknown coflow {dep}"
                    )


@dataclass
class _DataAvailable:
    """Internal no-op dynamics action: wakes the scheduler when pipelined
    data becomes available (§4.3)."""

    time: float

    def apply(self, sim: Simulator, now: float) -> None:
        """No state change needed — the reschedule itself is the effect."""


def run_policy(
    scheduler: Scheduler,
    coflows: Iterable[CoFlow],
    fabric: Fabric,
    config: SimulationConfig,
    *,
    dynamics: Iterable[DynamicsAction] = (),
    rate_perturbation: Callable[[Flow, float], float] | None = None,
    observer: ScheduleObserver | None = None,
) -> SimulationResult:
    """One-call convenience wrapper: build a simulator and run it."""
    sim = Simulator(
        fabric,
        scheduler,
        config,
        dynamics=dynamics,
        rate_perturbation=rate_perturbation,
        observer=observer,
    )
    return sim.run(coflows)
