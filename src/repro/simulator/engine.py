"""Fluid-flow discrete-event simulation engine.

The engine advances a set of coflows through a big-switch fabric under the
control of a :class:`~repro.schedulers.base.Scheduler`. Between events every
flow moves at a constant allocated rate, so the engine only needs to visit:

* external events — coflow arrivals and dynamics actions,
* flow completions under the current allocation,
* scheduler wakeups — queue-threshold crossings and starvation deadlines,
* (sync mode) δ-grid boundaries at which new schedules take effect.

**Coordinator timing model (§5).** With ``sync_interval == 0`` the scheduler
reacts instantly to every event (the idealised coordinator used for the main
simulation results). With ``δ = sync_interval > 0``, state changes are only
*acted on* at the next multiple of δ: a coflow arriving at ``t`` is first
scheduled at ``ceil(t/δ)·δ``, and bandwidth freed by a completion stays idle
until that boundary — exactly the staleness that Fig. 14(c) measures.
Because rates are constant between state changes, recomputing at every grid
point would yield identical schedules, so the engine only recomputes at grid
points *following* a state change; this is an exact optimisation, not an
approximation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol

from ..config import SimulationConfig
from ..errors import SimulationError
from ..schedulers.base import Allocation, Scheduler
from .events import Event, EventKind, EventQueue
from .fabric import Fabric
from .flows import CoFlow, Flow
from .state import ClusterState


class DynamicsAction(Protocol):
    """Dynamics events (failures, stragglers, …) applied at their instant."""

    time: float

    def apply(self, sim: "Simulator", now: float) -> None:
        """Mutate simulator state; the engine reschedules afterwards."""
        ...  # pragma: no cover - protocol


class ScheduleObserver(Protocol):
    """Telemetry hook notified after every schedule application."""

    def on_schedule(self, state: ClusterState, allocation: Allocation,
                    now: float) -> None:
        ...  # pragma: no cover - protocol


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    #: Every coflow that finished, in completion order.
    coflows: list[CoFlow] = field(default_factory=list)
    #: Number of schedule computations performed.
    reschedules: int = 0
    #: Simulated time at which the last coflow finished.
    makespan: float = 0.0

    def cct(self, coflow_id: int) -> float:
        for c in self.coflows:
            if c.coflow_id == coflow_id:
                return c.cct()
        raise KeyError(f"coflow {coflow_id} not in result")

    def ccts(self) -> dict[int, float]:
        """coflow_id → CCT for every finished coflow."""
        return {c.coflow_id: c.cct() for c in self.coflows}

    def average_cct(self) -> float:
        if not self.coflows:
            return 0.0
        return sum(c.cct() for c in self.coflows) / len(self.coflows)

    def coflow(self, coflow_id: int) -> CoFlow:
        for c in self.coflows:
            if c.coflow_id == coflow_id:
                return c
        raise KeyError(f"coflow {coflow_id} not in result")


class Simulator:
    """Drives one scheduler over one workload on one fabric."""

    def __init__(
        self,
        fabric: Fabric,
        scheduler: Scheduler,
        config: SimulationConfig,
        *,
        dynamics: Iterable[DynamicsAction] = (),
        rate_perturbation: Callable[[Flow, float], float] | None = None,
        observer: "ScheduleObserver | None" = None,
    ):
        self.fabric = fabric
        self.scheduler = scheduler
        self.config = config
        self._dynamics = list(dynamics)
        #: Optional testbed-mode hook mapping (flow, allocated rate) to the
        #: *achieved* rate — models imperfect rate enforcement (§7 setup).
        self._rate_perturbation = rate_perturbation
        #: Optional telemetry observer notified after every schedule
        #: application (see repro.analysis.telemetry.TelemetryRecorder).
        self._observer = observer
        if observer is not None and hasattr(observer, "bind_scheduler"):
            observer.bind_scheduler(scheduler)

        self.state = ClusterState(fabric=fabric)
        #: Per-flow efficiency factors (< 1 for straggling flows, §4.3).
        self.flow_efficiency: dict[int, float] = {}

        self._events = EventQueue()
        self._now = 0.0
        self._next_sync: float | None = None
        self._waiting_dag: dict[int, CoFlow] = {}
        self._finished_ids: set[int] = set()
        self._result = SimulationResult()
        #: Flows with a positive rate under the current allocation, plus
        #: flows that may already be complete (zero-volume on arrival).
        #: Only these can change state between events — keeping the hot
        #: loops off the full active set is the engine's main optimisation.
        self._running: list[Flow] = []
        #: Coflow ids with at least one running flow, precomputed at
        #: allocation time so time advancement can mark "progressed"
        #: coflows in the scheduling delta with one set union.
        self._running_cids: frozenset[int] = frozenset()
        self._maybe_done: list[tuple[Flow, CoFlow]] = []
        self._coflow_of: dict[int, CoFlow] = {}
        #: Lower bound (absolute time) before which no running flow can
        #: satisfy the completion predicate; lets _process_completions skip
        #: its scan on pure arrival / sync steps. Maintained by
        #: _earliest_completion; -inf means "unknown, always scan".
        self._no_completion_before: float = -math.inf
        #: Flows whose completion predicate fired during the last time
        #: advance (collected while moving bytes, so the completion pass
        #: walks only these instead of rescanning every running flow).
        self._completion_candidates: list[Flow] = []
        #: True when the current step advanced time, i.e. the candidate
        #: list above is authoritative. Zero-width steps (several events at
        #: one instant) and dynamics fall back to the full scan.
        self._advanced_this_step = False

    # ---- public API -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    def run(self, coflows: Iterable[CoFlow]) -> SimulationResult:
        """Simulate to completion and return per-coflow results."""
        submitted = list(coflows)
        self._validate_workload(submitted)
        for c in submitted:
            self._events.push(
                Event(c.arrival_time, EventKind.COFLOW_ARRIVAL, c)
            )
        for action in self._dynamics:
            self._events.push(Event(action.time, EventKind.DYNAMICS, action))

        self._loop(expected=len(submitted))
        self._result.makespan = max(
            (c.finish_time or 0.0 for c in self._result.coflows), default=0.0
        )
        return self._result

    # ---- main loop -------------------------------------------------------------

    def _loop(self, expected: int) -> None:
        while len(self._finished_ids) < expected:
            t_next = self._next_instant()
            if math.isinf(t_next):
                self._raise_stuck()
            if t_next > self.config.max_sim_time:
                raise SimulationError(
                    f"simulation exceeded max_sim_time="
                    f"{self.config.max_sim_time}; likely a livelock"
                )
            self._advance_to(t_next)

            changed = self._process_completions()
            changed |= self._process_external_events()
            if changed:
                self._request_resync(self._now)

            if self._next_sync is not None and self._next_sync <= self._now:
                self._recompute_schedule()

    def _next_instant(self) -> float:
        """Earliest of: external event, flow completion, pending sync."""
        candidates: list[float] = []
        head = self._events.peek_time()
        if head is not None:
            candidates.append(head)
        if self._next_sync is not None:
            candidates.append(self._next_sync)
        completion = self._earliest_completion()
        if completion is not None:
            candidates.append(completion)
        if not candidates:
            return math.inf
        return max(min(candidates), self._now)

    def _flow_complete(self, f: Flow) -> bool:
        """Completion predicate with a rate-relative guard.

        Absolute byte tolerance alone is not enough: a fast flow can be
        left with ``remaining`` just above ``epsilon_bytes`` whose transfer
        time (< 1e-12 s) underflows float64 time addition, freezing the
        clock. Anything needing less than ~10 ns at its current rate is
        complete.
        """
        remaining = f.volume - f.bytes_sent
        if remaining <= self.config.epsilon_bytes:
            return True
        return f.rate > 0 and remaining <= f.rate * 1e-8

    def _earliest_completion(self) -> float | None:
        if self._maybe_done:
            self._no_completion_before = self._now
            return self._now
        # Inlined _flow_complete: this scan runs for every running flow at
        # every event, so attribute/method dispatch overhead is material.
        eps = self.config.epsilon_bytes
        best = math.inf
        pred_min = math.inf
        now = self._now
        for f in self._running:
            if f.finish_time is not None:
                continue
            remaining = f.volume - f.bytes_sent
            rate = f.rate
            if remaining <= eps or (rate > 0 and remaining <= rate * 1e-8):
                self._no_completion_before = now
                return now
            if rate > 0:
                ttc = remaining / rate
                if ttc < best:
                    best = ttc
                # Earliest instant the completion predicate can start
                # firing for this flow: its tolerance window opens
                # max(eps, rate*1e-8) bytes before the exact finish.
                slack = eps if eps > rate * 1e-8 else rate * 1e-8
                pred = (remaining - slack) / rate
                if pred < pred_min:
                    pred_min = pred
        # Conservative margin (a few ulps) so float noise can only make us
        # scan unnecessarily, never miss a completion.
        self._no_completion_before = (
            now + pred_min - abs(pred_min) * 1e-12 - 1e-15
            if math.isfinite(pred_min) else math.inf
        )
        return now + best if math.isfinite(best) else None

    def _advance_to(self, t: float) -> None:
        dt = t - self._now
        if dt < 0:
            raise SimulationError(f"time went backwards: {self._now} -> {t}")
        if dt > 0:
            # Inlined Flow.advance for the hot loop (same semantics),
            # collecting flows whose completion predicate fires so the
            # completion pass needn't rescan the whole running set.
            eps = self.config.epsilon_bytes
            candidates = self._completion_candidates
            candidates.clear()
            for f in self._running:
                rate = f.rate
                if rate > 0 and f.finish_time is None:
                    volume = f.volume
                    sent = f.bytes_sent + rate * dt
                    if sent > volume:
                        sent = volume
                    f.bytes_sent = sent
                    remaining = volume - sent
                    if remaining <= eps or remaining <= rate * 1e-8:
                        candidates.append(f)
            self.state.delta.progressed |= self._running_cids
            self._advanced_this_step = True
        else:
            self._advanced_this_step = False
        self._now = t

    # ---- event processing ---------------------------------------------------------

    def _process_completions(self) -> bool:
        if not self._maybe_done and self._now < self._no_completion_before:
            # The pre-advance scan proved no flow can have completed yet
            # (this step stops strictly before any completion window).
            return False
        candidates: list[tuple[Flow, CoFlow]] = []
        if self._advanced_this_step:
            # The advance loop already found every flow whose completion
            # predicate fired; no second scan over the running set needed.
            for f in self._completion_candidates:
                candidates.append((f, self._coflow_of[f.coflow_id]))
            self._completion_candidates = []
        else:
            # Zero-width step (events piling up at one instant): rates may
            # have changed since the last advance, so scan everything —
            # exactly what the original per-event pass did.
            eps = self.config.epsilon_bytes
            for f in self._running:
                # Inlined _flow_complete (see _earliest_completion).
                if f.finish_time is not None:
                    continue
                remaining = f.volume - f.bytes_sent
                if remaining <= eps or (
                        f.rate > 0 and remaining <= f.rate * 1e-8):
                    candidates.append((f, self._coflow_of[f.coflow_id]))
        if self._maybe_done:
            candidates.extend(self._maybe_done)
            self._maybe_done = []

        touched: dict[int, CoFlow] = {}
        for f, coflow in candidates:
            if f.finished or not self._flow_complete(f):
                continue
            f.bytes_sent = f.volume
            f.rate = 0.0
            f.finish_time = self._now
            self.state.note_flow_finished(f)
            self.scheduler.on_flow_completion(f, coflow, self._now)
            touched[coflow.coflow_id] = coflow
        if not touched:
            return False

        done: set[int] = set()
        for coflow in touched.values():
            if coflow.all_flows_finished():
                coflow.finish_time = self._now
                self._finished_ids.add(coflow.coflow_id)
                self._result.coflows.append(coflow)
                self.scheduler.on_coflow_completion(coflow, self._now)
                done.add(coflow.coflow_id)
                del self._coflow_of[coflow.coflow_id]
        if done:
            self.state.active_coflows = [
                c for c in self.state.active_coflows
                if c.coflow_id not in done
            ]
            for coflow_id in done:
                self.state.note_coflow_finished(coflow_id)
                self._release_dependents_of(coflow_id)
        return True

    def _process_external_events(self) -> bool:
        changed = False
        while True:
            head = self._events.peek_time()
            if head is None or head > self._now + 1e-15:
                break
            event = self._events.pop()
            if event.kind is EventKind.COFLOW_ARRIVAL:
                self._handle_arrival(event.payload)
                changed = True
            elif event.kind is EventKind.DYNAMICS:
                event.payload.apply(self, self._now)
                if not isinstance(event.payload, _DataAvailable):
                    # Arbitrary mutation (restarts, capacity changes, …):
                    # incremental bookkeeping must rebuild from scratch.
                    # Data-availability wakeups change nothing the delta
                    # vocabulary tracks, so they stay incremental.
                    self.state.note_dynamics()
                changed = True
            else:  # SYNC markers never enter the external queue
                raise SimulationError(f"unexpected event kind {event.kind}")
        return changed

    def _handle_arrival(self, coflow: CoFlow) -> None:
        unmet = [d for d in coflow.depends_on if d not in self._finished_ids]
        if unmet:
            self._waiting_dag[coflow.coflow_id] = coflow
            return
        self._activate(coflow)

    def _activate(self, coflow: CoFlow) -> None:
        # DAG-released stages start counting CCT from their release instant.
        coflow.arrival_time = max(coflow.arrival_time, self._now)
        self.state.active_coflows.append(coflow)
        self.state.note_activated(coflow)
        self._coflow_of[coflow.coflow_id] = coflow
        self.scheduler.on_coflow_arrival(coflow, self._now)
        for f in coflow.flows:
            # Wake the scheduler when pipelined data becomes available
            # (§4.3), and catch zero-volume flows that are born complete.
            if f.available_time > self._now:
                self._events.push(
                    Event(f.available_time, EventKind.DYNAMICS,
                          _DataAvailable(f.available_time))
                )
            if f.volume - f.bytes_sent <= self.config.epsilon_bytes:
                self._maybe_done.append((f, coflow))

    def _release_dependents_of(self, finished_id: int) -> None:
        released = [
            c for c in self._waiting_dag.values()
            if all(d in self._finished_ids for d in c.depends_on)
        ]
        for c in released:
            del self._waiting_dag[c.coflow_id]
            self._activate(c)

    # ---- scheduling ------------------------------------------------------------------

    def _request_resync(self, t: float) -> None:
        """Ask for a schedule recomputation, quantised to the δ grid."""
        delta = self.config.sync_interval
        if delta > 0:
            t = math.ceil((t - 1e-12) / delta) * delta
        if self._next_sync is None or t < self._next_sync:
            self._next_sync = t

    def _recompute_schedule(self) -> None:
        self._next_sync = None
        allocation = self.scheduler.schedule(self.state, self._now)
        self.state.delta.clear()
        self._apply_allocation(allocation)
        self._result.reschedules += 1
        if self._observer is not None:
            self._observer.on_schedule(self.state, allocation, self._now)
        wakeup = self.scheduler.next_wakeup(self.state, allocation, self._now)
        # Sub-nanosecond wakeups cannot advance float64 time at realistic
        # clock values; dropping them avoids reschedule storms.
        if wakeup is not None and wakeup > self._now + 1e-9:
            self._request_resync(wakeup)

    def _apply_allocation(self, allocation: Allocation) -> None:
        running: list[Flow] = []
        running_cids: set[int] = set()
        rates_get = allocation.rates.get
        efficiency = self.flow_efficiency
        perturb = self._rate_perturbation
        state = self.state
        now = self._now
        for coflow in state.active_coflows:
            for f in state.pending_flows(coflow):
                if f.finish_time is not None:
                    continue
                rate = rates_get(f.flow_id, 0.0)
                if rate > 0:
                    if f.available_time > now:
                        # §4.3: data not yet produced cannot be sent. A
                        # scheduler that allocates here (availability-
                        # oblivious) has reserved the ports for nothing —
                        # the slot is wasted, which is the behaviour the
                        # data-unavailability experiment measures.
                        rate = 0.0
                    elif efficiency:
                        rate *= efficiency.get(f.flow_id, 1.0)
                    if rate > 0 and perturb is not None:
                        rate = perturb(f, rate)
                f.rate = rate if rate > 0.0 else 0.0
                if f.rate > 0:
                    running.append(f)
                    running_cids.add(f.coflow_id)
                    if f.start_time is None:
                        f.start_time = now
        self._running = running
        self._running_cids = frozenset(running_cids)

    # ---- diagnostics --------------------------------------------------------------------

    def _raise_stuck(self) -> None:
        stuck = [
            c.coflow_id
            for c in self.state.active_coflows
            if not c.all_flows_finished()
        ]
        waiting = sorted(self._waiting_dag)
        raise SimulationError(
            f"simulation stalled at t={self._now}: no future events, "
            f"active coflows {stuck}, DAG-blocked coflows {waiting}. "
            f"This usually means the scheduler allocated zero rate to every "
            f"remaining flow, or a DAG dependency cycle exists."
        )

    @staticmethod
    def _validate_workload(coflows: list[CoFlow]) -> None:
        seen_cf: set[int] = set()
        seen_fl: set[int] = set()
        for c in coflows:
            if c.coflow_id in seen_cf:
                raise SimulationError(f"duplicate coflow id {c.coflow_id}")
            seen_cf.add(c.coflow_id)
            for f in c.flows:
                if f.flow_id in seen_fl:
                    raise SimulationError(f"duplicate flow id {f.flow_id}")
                seen_fl.add(f.flow_id)
        ids = seen_cf
        for c in coflows:
            for dep in c.depends_on:
                if dep not in ids:
                    raise SimulationError(
                        f"coflow {c.coflow_id} depends on unknown coflow {dep}"
                    )


@dataclass
class _DataAvailable:
    """Internal no-op dynamics action: wakes the scheduler when pipelined
    data becomes available (§4.3)."""

    time: float

    def apply(self, sim: Simulator, now: float) -> None:
        """No state change needed — the reschedule itself is the effect."""


def run_policy(
    scheduler: Scheduler,
    coflows: Iterable[CoFlow],
    fabric: Fabric,
    config: SimulationConfig,
    *,
    dynamics: Iterable[DynamicsAction] = (),
    rate_perturbation: Callable[[Flow, float], float] | None = None,
    observer: ScheduleObserver | None = None,
) -> SimulationResult:
    """One-call convenience wrapper: build a simulator and run it."""
    sim = Simulator(
        fabric,
        scheduler,
        config,
        dynamics=dynamics,
        rate_perturbation=rate_perturbation,
        observer=observer,
    )
    return sim.run(coflows)
