"""Legacy engine façade over the scenario/session kernel.

The fluid-flow discrete-event core now lives in
:mod:`repro.simulator.session` (:class:`SimulationSession`: explicit
``step`` / ``run_until`` / ``run`` lifecycle, ``snapshot`` / ``restore``
checkpointing, lazily-pulled :class:`~repro.simulator.scenario.Scenario`
input). This module keeps the original entry points stable:

* :class:`Simulator` — the classic "construct, then ``run(coflows)``"
  driver, now a thin adapter that wraps the coflow list (plus the
  constructor's ``dynamics``) into a batch scenario and delegates to the
  session kernel. Byte-identical results, same validation errors.
* :func:`run_policy` — the one-call convenience wrapper used throughout
  the experiments, analysis and CLI layers.
* Re-exports of :class:`SimulationResult`, the ``DynamicsAction`` /
  ``ScheduleObserver`` protocols and the internal ``_DataAvailable``
  wakeup marker, so historical imports keep working.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..config import SimulationConfig
from ..observability import MetricsRegistry, PhaseTimers, Tracer
from ..schedulers.base import Scheduler
from .fabric import Fabric
from .flows import CoFlow, Flow
from .scenario import Scenario
from .topology import Topology
from .session import (  # noqa: F401  (re-exported legacy names)
    DynamicsAction,
    ScheduleObserver,
    SessionSnapshot,
    SimulationResult,
    SimulationSession,
    _DataAvailable,
)


class Simulator(SimulationSession):
    """Drives one scheduler over one workload on one fabric.

    Legacy façade: dynamics actions are supplied at construction and the
    workload as a materialised coflow list at :meth:`run` time. Internally
    both become a single batch :class:`~repro.simulator.scenario.Scenario`
    driving the session kernel — every result is byte-identical to the
    pre-scenario engine, as the equivalence suite asserts.
    """

    def __init__(
        self,
        fabric: Fabric,
        scheduler: Scheduler,
        config: SimulationConfig,
        *,
        dynamics: Iterable[DynamicsAction] = (),
        topology: "Topology | None" = None,
        rate_perturbation: Callable[[Flow, float], float] | None = None,
        observer: "ScheduleObserver | None" = None,
        sink: Callable[[CoFlow], None] | None = None,
        tracer: "Tracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
        timers: "PhaseTimers | None" = None,
    ):
        super().__init__(
            fabric,
            scheduler,
            config,
            topology=topology,
            rate_perturbation=rate_perturbation,
            observer=observer,
            sink=sink,
            tracer=tracer,
            metrics=metrics,
            timers=timers,
        )
        self._dynamics = list(dynamics)

    def run(
        self, coflows: Iterable[CoFlow] | None = None
    ) -> SimulationResult:
        """Simulate to completion and return per-coflow results.

        ``run(coflows)`` builds the batch scenario (validating the workload
        exactly as before) and attaches it; ``run()`` with no argument
        behaves like :meth:`SimulationSession.run` on the already-attached
        scenario.
        """
        if coflows is not None:
            self.attach(Scenario.from_coflows(coflows, self._dynamics))
        return SimulationSession.run(self)


def run_policy(
    scheduler: Scheduler,
    coflows: Iterable[CoFlow],
    fabric: Fabric,
    config: SimulationConfig,
    *,
    dynamics: Iterable[DynamicsAction] = (),
    topology: "Topology | None" = None,
    rate_perturbation: Callable[[Flow, float], float] | None = None,
    observer: ScheduleObserver | None = None,
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
    timers: "PhaseTimers | None" = None,
) -> SimulationResult:
    """One-call convenience wrapper: build a simulator and run it."""
    sim = Simulator(
        fabric,
        scheduler,
        config,
        dynamics=dynamics,
        topology=topology,
        rate_perturbation=rate_perturbation,
        observer=observer,
        tracer=tracer,
        metrics=metrics,
        timers=timers,
    )
    return sim.run(coflows)


def run_scenario(
    scheduler: Scheduler,
    scenario: Scenario,
    fabric: Fabric,
    config: SimulationConfig,
    *,
    topology: "Topology | None" = None,
    rate_perturbation: Callable[[Flow, float], float] | None = None,
    observer: ScheduleObserver | None = None,
    sink: Callable[[CoFlow], None] | None = None,
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
    timers: "PhaseTimers | None" = None,
) -> SimulationResult:
    """Scenario-first twin of :func:`run_policy`."""
    return SimulationSession(
        fabric,
        scheduler,
        config,
        scenario=scenario,
        topology=topology,
        rate_perturbation=rate_perturbation,
        observer=observer,
        sink=sink,
        tracer=tracer,
        metrics=metrics,
        timers=timers,
    ).run()
