"""Fault-tolerant execution primitives for batch runs.

Every engine path in this repo is deterministic and bit-identity-verified
(the fuzz suite and ``BENCH_fig9.json`` pin it), which makes
retry-after-failure *provably safe*: a retried run must reproduce the
original bytes, so a sweep that survives worker crashes, hung runs and torn
cache files still returns results byte-identical to a fault-free execution.
This module provides the building blocks the sweep runner
(:class:`repro.experiments.runner.SweepRunner`) composes into that
guarantee:

* :class:`RetryPolicy` — attempt budget, exponential backoff with
  *deterministic seeded jitter* (no wall-clock or global RNG input, so two
  runs of the same sweep back off identically), and an optional per-attempt
  wall-clock ``timeout``;
* the failure taxonomy — attempt kinds :data:`EXCEPTION` (the run raised),
  :data:`TIMEOUT` (the watchdog expired) and :data:`WORKER_LOST` (the
  worker process died under the run), recorded per attempt in
  :class:`Attempt` and aggregated into a structured :class:`RunFailure`
  outcome that failed runs *return* instead of raising;
* :class:`Watchdog` — per-task deadline bookkeeping for the pool monitor
  (which worker is overdue, how long the next ``wait`` may block);
* :class:`SweepLog` — an append-only JSON-lines telemetry log (per-run
  attempts, timings, cache hits) for later service dashboards;
* :func:`format_exception_chain` — a compact, picklable rendering of an
  exception and its ``__cause__``/``__context__`` chain.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from .errors import ConfigError

#: Attempt kinds — the failure taxonomy. ``OK`` marks the successful
#: attempt that ends a run's retry loop.
OK = "ok"
EXCEPTION = "exception"
TIMEOUT = "timeout"
WORKER_LOST = "worker-lost"

FAILURE_KINDS = (EXCEPTION, TIMEOUT, WORKER_LOST)


def format_exception_chain(exc: BaseException, limit: int = 8) -> str:
    """``"TypeA: msg <- TypeB: msg"`` down the cause/context chain.

    A flat string survives pickling across process boundaries and is what
    :class:`RunFailure` and the sweep log carry; the full traceback stays
    in the worker that raised it.
    """
    parts = []
    seen: set[int] = set()
    cur: BaseException | None = exc
    while cur is not None and len(parts) < limit and id(cur) not in seen:
        seen.add(id(cur))
        parts.append(f"{type(cur).__name__}: {cur}")
        cur = cur.__cause__ or cur.__context__
    return " <- ".join(parts)


@dataclass(frozen=True)
class RetryPolicy:
    """How (and how long) to keep trying a failed run.

    ``delay_before(attempt, key)`` is a pure function of the policy, the
    attempt number and the caller-supplied key (the run's cache key), so
    backoff schedules are reproducible: the jitter comes from a string-
    seeded :class:`random.Random` (SHA-512 seeding — stable across
    processes and ``PYTHONHASHSEED`` values), never from wall clock.

    ``timeout`` is the per-attempt wall-clock deadline in seconds. The
    pooled runner enforces it preemptively (the hung worker is killed and
    the run retried); the inline runner cannot preempt Python code, so it
    records the overrun in the sweep log but keeps the computed result —
    a deterministic run would only repeat the overrun on retry.
    """

    #: Total attempts per run (1 = never retry).
    max_attempts: int = 3
    #: Backoff before the second attempt, in seconds.
    base_delay: float = 0.05
    #: Multiplier applied per additional attempt.
    backoff: float = 2.0
    #: Hard cap on any single backoff delay, in seconds.
    max_delay: float = 2.0
    #: Jitter amplitude as a fraction of the delay (0 disables it).
    jitter: float = 0.25
    #: Seed mixed into the deterministic jitter stream.
    jitter_seed: int = 0
    #: Optional per-attempt wall-clock deadline, in seconds.
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0:
            raise ConfigError(
                f"base_delay must be >= 0, got {self.base_delay}"
            )
        if self.backoff < 1:
            raise ConfigError(f"backoff must be >= 1, got {self.backoff}")
        if not 0 <= self.jitter <= 1:
            raise ConfigError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(
                f"timeout must be positive, got {self.timeout}"
            )

    def delay_before(self, attempt: int, key: str = "") -> float:
        """Seconds to back off before ``attempt`` (the first is free).

        Exponential in the attempt number, capped at ``max_delay``, with a
        deterministic ±``jitter`` fraction derived from
        ``(jitter_seed, key, attempt)``.
        """
        if attempt <= 1 or self.base_delay == 0:
            return 0.0
        delay = self.base_delay * self.backoff ** (attempt - 2)
        delay = min(delay, self.max_delay)
        if self.jitter:
            rng = random.Random(f"{self.jitter_seed}:{key}:{attempt}")
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


@dataclass
class Attempt:
    """One execution attempt of one run."""

    #: 1-based attempt number.
    index: int
    #: :data:`OK` or one of :data:`FAILURE_KINDS`.
    kind: str
    #: Wall-clock seconds this attempt took (approximate for pooled runs).
    elapsed: float
    #: Formatted exception chain (failures only).
    error: str | None = None

    def as_record(self) -> dict:
        """JSON-able form for the sweep log."""
        rec = {"n": self.index, "kind": self.kind,
               "elapsed": round(self.elapsed, 6)}
        if self.error is not None:
            rec["error"] = self.error
        return rec


@dataclass
class RunFailure:
    """Structured outcome of a run that exhausted its retry budget.

    Returned (not raised) by the resilient sweep runner in place of a
    :class:`~repro.experiments.runner.RunOutcome`, so one bad run cannot
    discard a batch of finished ones; ``strict=True`` opts back into
    fail-fast via :class:`~repro.errors.RunFailedError`.
    """

    spec: object
    #: Kind of the final attempt (one of :data:`FAILURE_KINDS`).
    kind: str
    #: Full attempt history, in order.
    attempts: list[Attempt]
    #: Formatted exception chain of the final attempt.
    error: str | None
    #: Total wall-clock seconds across all attempts.
    elapsed: float
    #: Parity with :class:`RunOutcome` so callers can filter uniformly.
    from_cache: bool = False
    failed: bool = field(default=True, init=False)


class Watchdog:
    """Per-task deadline bookkeeping for the pooled sweep monitor.

    Tracks when each in-flight task started; :meth:`expired` names the
    overdue ones and :meth:`wait_budget` bounds how long the monitor's next
    ``wait`` may block before a deadline could pass unnoticed. With
    ``timeout=None`` it still measures elapsed time (for attempt records)
    but never expires anything.
    """

    def __init__(self, timeout: float | None):
        self.timeout = timeout
        self._started: dict[object, float] = {}

    def started(self, key: object) -> None:
        self._started[key] = time.monotonic()

    def finished(self, key: object) -> float:
        """Stop tracking ``key``; returns its elapsed seconds (0 if
        unknown)."""
        t0 = self._started.pop(key, None)
        return 0.0 if t0 is None else time.monotonic() - t0

    def expired(self) -> list[object]:
        """Keys whose deadline has passed (empty when no timeout is set)."""
        if self.timeout is None:
            return []
        cutoff = time.monotonic() - self.timeout
        return [k for k, t0 in self._started.items() if t0 < cutoff]

    def wait_budget(self) -> float | None:
        """Seconds until the earliest in-flight deadline (None = no bound)."""
        if self.timeout is None or not self._started:
            return None
        return max(
            0.0, min(self._started.values()) + self.timeout - time.monotonic()
        )


class SweepLog:
    """Append-only JSON-lines sweep telemetry.

    One object per line, flushed per write so a crashed/killed sweep keeps
    every record up to the failure — the log is itself part of the
    robustness story (post-mortems read it to see which runs retried, which
    were cache hits and where the time went).
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def write(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "SweepLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
