"""Bench: regenerate Fig. 2 — out-of-sync prevalence under Aalo (§2.3)."""

from repro.experiments import fig2_outofsync

from conftest import attach_and_print


def test_fig2_out_of_sync(benchmark, scale):
    result = benchmark.pedantic(
        fig2_outofsync.run, kwargs={"scale": scale}, rounds=1, iterations=1,
    )
    rendered = fig2_outofsync.render(result)
    attach_and_print(benchmark, rendered)

    # Shape assertions from §2.3: the three width populations all exist and
    # the out-of-sync problem is visible (a solid fraction of equal-length
    # coflows exceed 12% normalised FCT deviation under Aalo).
    assert result.single_flow_fraction > 0.05
    assert result.equal_multiflow_fraction > 0.2
    assert result.unequal_multiflow_fraction > 0.1
    assert result.profile.equal_fraction_over(0.12) > 0.15
