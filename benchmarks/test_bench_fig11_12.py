"""Bench: regenerate Fig. 11 / Fig. 12 — per-bin breakdown (§6.2)."""

from repro.analysis.bins import BIN_LABELS
from repro.experiments import fig11_bins

from conftest import attach_and_print


def test_fig11_12_bins(benchmark, scale):
    result = benchmark.pedantic(
        fig11_bins.run, kwargs={"scale": scale}, rounds=1, iterations=1,
    )
    attach_and_print(benchmark, fig11_bins.render(result))

    fb = result.per_trace["fb-like"]
    # Bin mix resembles Table 1 (bin-1 dominates).
    assert fb.fractions["bin-1"] == max(fb.fractions.values())
    # LCoF (full Saath) helps the small+thin bin-1 the most strongly among
    # paper claims we can assert robustly: it must improve bin-1 vs Aalo.
    saath_medians = fb.medians["saath"]
    assert saath_medians.get("bin-1", 0.0) > 1.0
    # Every populated bin has a finite median for every variant.
    for variant, medians in fb.medians.items():
        for label, value in medians.items():
            assert value > 0.0, (variant, label)
