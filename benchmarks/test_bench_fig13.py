"""Bench: regenerate Fig. 13 — FCT deviation, Saath vs Aalo (§6.2)."""

from repro.experiments import fig13_deviation

from conftest import attach_and_print


def test_fig13_fct_deviation(benchmark, scale):
    result = benchmark.pedantic(
        fig13_deviation.run, kwargs={"scale": scale}, rounds=1, iterations=1,
    )
    attach_and_print(benchmark, fig13_deviation.render(result))

    saath = result.profiles["saath"]
    aalo = result.profiles["aalo"]
    # The paper's claim: Saath keeps far more equal-length coflows in sync.
    assert (saath.equal_fraction_at_zero(1e-3)
            >= aalo.equal_fraction_at_zero(1e-3))
    under_10_saath = 1 - saath.equal_fraction_over(0.10)
    under_10_aalo = 1 - aalo.equal_fraction_over(0.10)
    assert under_10_saath >= under_10_aalo
    # And it does not fully eliminate out-of-sync (work conservation).
    assert saath.equal_fraction_over(0.0) > 0.0
