"""Bench: regenerate Fig. 9 — Saath vs SEBF / Aalo / UC-TCP (§6.1)."""

from repro.experiments import fig9_speedup
from repro.experiments.common import ExperimentScale

from conftest import attach_and_print


def test_fig9_speedup(benchmark, scale):
    result = benchmark.pedantic(
        fig9_speedup.run, kwargs={"scale": scale}, rounds=1, iterations=1,
    )
    attach_and_print(benchmark, fig9_speedup.render(result))
    # Engine-generation wall clocks on the 1-CPU reference box (SMALL
    # scale), for readers of the committed BENCH_fig9.json artifact.
    benchmark.extra_info["engine_trajectory"] = (
        "fig9 SMALL end-to-end: seed ~14.3s -> incremental core (PR 1) "
        "~6.5s -> allocation-epoch engine (PR 2) ~4.3s -> flat flow-table "
        "kernel (PR 3) ~3.4s -> compiled _fastcore kernels (PR 8) ~1.7s; "
        "byte-identical output across generations (machine-readable "
        "series: BENCH_history.json)"
    )

    contended = scale is not ExperimentScale.TINY
    for trace, by_baseline in result.summaries.items():
        aalo = by_baseline["aalo"]
        uctcp = by_baseline["uc-tcp"]
        sebf = by_baseline["varys-sebf"]
        # Who wins: Saath beats Aalo, crushes UC-TCP under contention, and
        # is in the same league as the offline SEBF.
        assert aalo.p50 >= 1.0
        assert aalo.p90 > aalo.p50  # long right tail, as in the paper
        assert sebf.p50 > 0.3
        if contended:
            # The two-orders-of-magnitude UC-TCP gap needs a loaded
            # cluster; the TINY smoke workload is barely contended (and
            # without contention UC-TCP can even beat Aalo's weighted
            # sharing, so the ordering assertions only hold here).
            assert uctcp.p50 >= aalo.p50 * 0.95
            assert aalo.p50 > 1.0
            assert uctcp.p90 > 5.0
