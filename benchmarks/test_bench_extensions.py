"""Bench: extension baselines and the estimator ablation (beyond the paper).

* **Baraat FIFO-LM** — the decentralised related-work scheduler (§8): the
  Saath paper argues it inherits Aalo's limitations; here we measure where
  it lands between UC-TCP and Aalo/Saath.
* **Sincronia BSSI** — a post-paper clairvoyant ordering; sanity: it should
  be competitive with SEBF.
* **Length estimators** (§4.3 future work): Saath's dynamics promotion with
  median vs trimmed-mean vs conservative-quantile vs Cedar-like estimates,
  under straggler injection.
"""

import numpy as np

from repro.analysis.metrics import per_coflow_speedups
from repro.analysis.report import format_table
from repro.config import SimulationConfig
from repro.core.estimators import ESTIMATORS
from repro.core.saath import SaathScheduler
from repro.experiments.common import fb_workload, run_policy_on
from repro.rng import make_rng
from repro.simulator.dynamics import inject_stragglers
from repro.simulator.engine import run_policy

from conftest import attach_and_print


def test_extension_baselines(benchmark, scale):
    def run():
        workload = fb_workload(scale)
        return workload, {
            policy: run_policy_on(workload, policy).ccts()
            for policy in ("aalo", "saath", "baraat-fifo-lm",
                           "sincronia-bssi", "varys-sebf")
        }

    workload, ccts = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for policy, values in ccts.items():
        rows.append([policy, float(np.mean(list(values.values())))])
    attach_and_print(benchmark, format_table(
        ["policy", "avg CCT (s)"], rows,
        title="Extension baselines — average CCT (same workload)",
        float_fmt="{:.3f}",
    ))

    avg = {p: np.mean(list(v.values())) for p, v in ccts.items()}
    # Sincronia (clairvoyant) should land in SEBF's league, well ahead of
    # the decentralised Baraat; Saath must beat Baraat (the §8 argument).
    assert avg["sincronia-bssi"] < avg["baraat-fifo-lm"]
    assert avg["saath"] < avg["baraat-fifo-lm"] * 1.05
    assert avg["sincronia-bssi"] < avg["aalo"]


def test_estimator_ablation(benchmark, scale):
    """Saath + §4.3 promotion under stragglers, per estimator."""
    def run():
        workload = fb_workload(scale)
        rng = make_rng(13)
        base_actions = inject_stragglers(
            workload.coflows, rng, fraction=0.05, efficiency=0.3
        )
        results = {}
        for name, estimator in ESTIMATORS.items():
            config = SimulationConfig(enable_dynamics_promotion=True)
            scheduler = SaathScheduler(config, length_estimator=estimator)
            res = run_policy(
                scheduler, workload.fresh_coflows(), workload.fabric,
                config, dynamics=[type(a)(a.time, a.flow_id, a.efficiency)
                                  for a in base_actions],
            )
            results[name] = res.average_cct()
        # Reference: promotion disabled entirely.
        config = SimulationConfig(enable_dynamics_promotion=False)
        res = run_policy(
            SaathScheduler(config), workload.fresh_coflows(),
            workload.fabric, config,
            dynamics=[type(a)(a.time, a.flow_id, a.efficiency)
                      for a in base_actions],
        )
        results["(no promotion)"] = res.average_cct()
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, cct] for name, cct in results.items()]
    attach_and_print(benchmark, format_table(
        ["estimator", "avg CCT under stragglers (s)"], rows,
        title="Ablation — §4.3 length estimators (Cedar future work)",
        float_fmt="{:.3f}",
    ))

    # All estimators must complete the workload and stay within a sane band
    # of each other; promotion should not be catastrophically worse than
    # no-promotion under any estimator.
    baseline = results["(no promotion)"]
    for name, cct in results.items():
        assert cct > 0
        assert cct < baseline * 1.5, name
