"""Bench: ablations beyond the paper's figures.

DESIGN.md calls out two design choices the paper motivates but does not
ablate directly; these benches quantify them:

* **work conservation** (Fig. 4's argument): Saath with vs without the
  work-conservation fill;
* **contention scope**: LCoF's ``k_c`` counted against all active coflows
  (default) vs only same-queue coflows.
"""

import numpy as np

from repro.analysis.metrics import per_coflow_speedups
from repro.analysis.report import format_table
from repro.config import SimulationConfig
from repro.experiments.common import fb_workload, run_policy_on

from conftest import attach_and_print


def test_ablation_work_conservation(benchmark, scale):
    def run():
        workload = fb_workload(scale)
        with_wc = run_policy_on(workload, "saath").ccts()
        without = run_policy_on(workload, "saath-no-wc").ccts()
        return workload, with_wc, without

    workload, with_wc, without = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    speedups = list(per_coflow_speedups(without, with_wc).values())
    median = float(np.median(speedups))
    rendered = format_table(
        ["metric", "value"],
        [
            ["median speedup from work conservation", median],
            ["avg CCT with WC (s)", float(np.mean(list(with_wc.values())))],
            ["avg CCT without WC (s)", float(np.mean(list(without.values())))],
        ],
        title="Ablation — Saath work conservation (Fig. 4's claim)",
        float_fmt="{:.3f}",
    )
    attach_and_print(benchmark, rendered)
    # Work conservation must not hurt on average and should help somewhere.
    assert np.mean(list(with_wc.values())) <= np.mean(list(without.values())) * 1.05
    assert max(speedups) >= 1.0


def test_ablation_contention_scope(benchmark, scale):
    def run():
        workload = fb_workload(scale)
        all_scope = run_policy_on(
            workload, "saath", SimulationConfig(contention_scope="all")
        ).ccts()
        queue_scope = run_policy_on(
            workload, "saath", SimulationConfig(contention_scope="queue")
        ).ccts()
        return all_scope, queue_scope

    all_scope, queue_scope = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = (np.mean(list(queue_scope.values()))
             / np.mean(list(all_scope.values())))
    rendered = format_table(
        ["metric", "value"],
        [["avg CCT ratio (queue-scope / all-scope)", float(ratio)]],
        title="Ablation — LCoF contention scope",
        float_fmt="{:.3f}",
    )
    attach_and_print(benchmark, rendered)
    # The two scopes should be in the same ballpark (the choice is a
    # second-order effect); a blow-up would indicate a bug.
    assert 0.5 < ratio < 2.0
