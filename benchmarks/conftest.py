"""Shared fixtures for the benchmark harness.

Each ``test_bench_*`` module regenerates one paper table/figure. The
benchmark body both *times* the experiment (pytest-benchmark) and *prints*
the regenerated rows/series (run with ``-s`` to see them); the rendered text
is also attached to the benchmark's ``extra_info`` so it lands in the JSON
output of ``--benchmark-json``.

Scale: benchmarks default to the SMALL preset (tens of seconds per figure).
Set ``REPRO_BENCH_SCALE=paper`` for full trace dimensions or ``tiny`` for a
smoke run.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import ExperimentScale


def bench_scale() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    try:
        return ExperimentScale(name)
    except ValueError:
        raise RuntimeError(
            f"REPRO_BENCH_SCALE must be tiny|small|paper, got {name!r}"
        ) from None


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return bench_scale()


def attach_and_print(benchmark, rendered: str) -> None:
    """Record the regenerated figure text on the benchmark and print it."""
    benchmark.extra_info["figure"] = rendered
    print()
    print(rendered)
