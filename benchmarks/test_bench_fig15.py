"""Bench: regenerate Fig. 15 — testbed-mode CCT speedup CDF (§7.1)."""

from repro.experiments import fig15_testbed

from conftest import attach_and_print


def test_fig15_testbed_cct(benchmark, scale):
    result = benchmark.pedantic(
        fig15_testbed.run, kwargs={"scale": scale}, rounds=1, iterations=1,
    )
    attach_and_print(benchmark, fig15_testbed.render(result))

    s = result.summary
    # Paper shape: median > 1, most coflows improve, and there is both a
    # sub-1 head (coflows FIFO favoured) and a long >1 tail.
    assert s.p50 > 1.0
    assert result.improved_fraction > 0.5
    assert s.minimum < 1.0
    assert s.maximum > 2.0
