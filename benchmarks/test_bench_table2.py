"""Bench: regenerate Table 2 — coordinator overhead breakdown (§7.3).

Also the one benchmark that genuinely uses pytest-benchmark's timing: the
scheduling-round latency on a busy snapshot is the quantity Table 2
reports (0.57 ms avg / 2.85 ms P90 for the C++ prototype; this Python
implementation is expected to be slower in absolute terms — the breakdown
structure is the reproducible claim).
"""

from repro.config import SimulationConfig
from repro.core.saath import SaathScheduler
from repro.experiments import table2_overhead
from repro.experiments.common import fb_workload
from repro.experiments.table2_overhead import _busy_state

from conftest import attach_and_print


def test_table2_overhead_report(benchmark, scale):
    result = benchmark.pedantic(
        table2_overhead.run, kwargs={"scale": scale, "rounds": 10},
        rounds=1, iterations=1,
    )
    attach_and_print(benchmark, table2_overhead.render(result))

    # Paper structure: ordering (LCoF) is less than half the compute time.
    assert 0.0 < result.ordering_fraction < 0.5
    assert result.total_ms_p90 >= result.total_ms_avg * 0.5
    assert result.peak_memory_mb < 512


def test_table2_schedule_round_latency(benchmark, scale):
    """Micro-benchmark: one Saath scheduling round on a busy snapshot."""
    workload = fb_workload(scale)
    config = SimulationConfig()
    scheduler = SaathScheduler(config)
    state = _busy_state(workload, scheduler)
    benchmark(scheduler.schedule, state, 0.0)
