"""Bench: regenerate Fig. 16 — JCT speedup by shuffle fraction (§7.2)."""

from repro.experiments import fig16_jct

from conftest import attach_and_print


def test_fig16_jct(benchmark, scale):
    result = benchmark.pedantic(
        fig16_jct.run, kwargs={"scale": scale}, rounds=1, iterations=1,
    )
    attach_and_print(benchmark, fig16_jct.render(result))

    # Dilution shape: shuffle-heavy jobs gain more than shuffle-light ones
    # (on means — medians degenerate to 1.0 on lightly-contended runs),
    # and overall JCT speedup exceeds 1.
    assert result.shuffle_heavy_mean > result.buckets["<25%"][2]
    assert result.all_jobs_mean > 1.0
