"""Bench: regenerate Fig. 10 — design breakdown A/N, P/F, LCoF (§6.2)."""

from repro.experiments import fig10_breakdown

from conftest import attach_and_print


def test_fig10_breakdown(benchmark, scale):
    result = benchmark.pedantic(
        fig10_breakdown.run, kwargs={"scale": scale}, rounds=1, iterations=1,
    )
    attach_and_print(benchmark, fig10_breakdown.render(result))

    for trace, by_variant in result.summaries.items():
        an = by_variant["an-fifo"].p50
        an_pf = by_variant["an-pf-fifo"].p50
        saath = by_variant["saath"].p50
        # The cumulative-design shape: every variant helps vs Aalo, and
        # the full Saath is the best of the three.
        assert an > 0.9
        assert saath > 1.0
        assert saath >= an - 0.1
        assert saath >= an_pf - 0.1
