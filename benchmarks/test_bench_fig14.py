"""Bench: regenerate Fig. 14 — sensitivity to S, E, δ, A, d (§6.3).

The five sweeps run 2 policies × ~6 settings each, so this is the heaviest
benchmark; it always uses the TINY workload unless REPRO_BENCH_SCALE=paper
explicitly asks for more.
"""

from repro.experiments import fig14_sensitivity
from repro.experiments.common import ExperimentScale

from conftest import attach_and_print


def _sweep_scale(scale: ExperimentScale) -> ExperimentScale:
    if scale is ExperimentScale.PAPER:
        return ExperimentScale.SMALL  # full sweeps at paper scale take hours
    return ExperimentScale.TINY


def test_fig14_sensitivity(benchmark, scale):
    result = benchmark.pedantic(
        fig14_sensitivity.run,
        kwargs={"scale": _sweep_scale(scale)},
        rounds=1, iterations=1,
    )
    attach_and_print(benchmark, fig14_sensitivity.render(result))

    # (a) Saath is less sensitive to the start threshold than Aalo: its
    # worst-case degradation across S values is no worse than Aalo's.
    s_sweep = result.sweeps["S"].medians
    saath_spread = (max(v["saath"] for v in s_sweep.values())
                    / min(v["saath"] for v in s_sweep.values()))
    aalo_spread = (max(v["aalo"] for v in s_sweep.values())
                   / min(v["aalo"] for v in s_sweep.values()))
    assert saath_spread <= aalo_spread * 1.5

    # (b) E: both stay within a modest band.
    e_sweep = result.sweeps["E"].medians
    assert (max(v["saath"] for v in e_sweep.values())
            / min(v["saath"] for v in e_sweep.values())) < 3.0

    # (d) Saath keeps beating Aalo as contention rises.
    a_sweep = result.sweeps["A"].medians
    for vals in a_sweep.values():
        assert vals["saath"] > 0.9

    # (e) d: Saath insensitive to the deadline factor.
    d_sweep = result.sweeps["d"].medians
    assert (max(v["saath"] for v in d_sweep.values())
            / min(v["saath"] for v in d_sweep.values())) < 2.0
