"""Bench: regenerate Fig. 3 — offline SCF/SRTF/LWTF vs Aalo (§2.4)."""

from repro.experiments import fig3_offline

from conftest import attach_and_print


def test_fig3_offline_policies(benchmark, scale):
    result = benchmark.pedantic(
        fig3_offline.run, kwargs={"scale": scale}, rounds=1, iterations=1,
    )
    attach_and_print(benchmark, fig3_offline.render(result))

    # Paper shape: all clairvoyant policies beat Aalo overall, and the
    # contention-aware LWTF stays competitive with the duration-only
    # orderings (at small scales the three are within noise of each other;
    # LWTF's win is a statistical claim recorded in EXPERIMENTS.md).
    for policy in fig3_offline.POLICIES:
        assert result.overall[policy] > 1.0
    assert result.overall["lwtf"] >= result.overall["scf"] * 0.85
